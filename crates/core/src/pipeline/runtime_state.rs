//! Live runtime-state serialisation for monitors (`causaliot-runtime v1`).
//!
//! A v2 checkpoint ([`super::checkpoint`]) persists everything a monitor
//! is *built* from — the fitted model. It deliberately excludes what a
//! monitor *becomes* while serving: the detector's always-on stats, the
//! phantom state machine's transition rings, the in-progress k-sequence
//! tracking window `W`, the next stream ordinal, and the preprocessing
//! drop counters. Restarting from a checkpoint alone therefore forgets
//! any half-tracked collective anomaly and resets the stream position.
//!
//! This module closes that gap with a second, much smaller document: the
//! **runtime-state snapshot**. [`Monitor::export_runtime_state`] /
//! [`OwnedMonitor::export_runtime_state`] serialise exactly the
//! runtime-mutable fields; restoring them onto a *freshly built* monitor
//! from the same model ([`OwnedMonitor::restore_runtime_state`]) yields a
//! monitor whose subsequent verdicts are **bit-identical** to the
//! exported one's. Everything derivable from the model — dense score
//! tables, DIG handle, detector config, telemetry instruments — is
//! rebuilt, not persisted.
//!
//! ## Grammar (line-oriented, one record per line)
//!
//! ```text
//! causaliot-runtime v1
//! stats 812 3 1 2                  # events, contextual, collective, max_tracking
//! drops 4 0 1                      # duplicate, extreme, non-finite
//! next_ordinal 812
//! pm 2 3 812 1 0                   # tau, devices, step, last_dev, last_old
//! pm.state 010                     # current system state, one 0/1 per device
//! pm.newest 2 0 1                  # newest ring slot per device
//! pm.ring 0 1624 1621 1623         # device, tau+1 packed (step<<1|value) entries
//! pm.ring 1 ...
//! w 1                              # tracked anomaly window length
//! w.event 811 48660000 1 1 0.9375 2  # ordinal, millis, device, value, score, #causes
//! w.cause 0 1 0                    # cause device, lag, value
//! end
//! ```
//!
//! Floats use Rust's `{:?}` formatting (shortest decimal round-tripping
//! to identical bits), so export → restore → export is byte-stable —
//! the same idiom, and the same crash-safety envelope
//! ([`crate::persist`]), as the v2 checkpoint format. The serving layer
//! (`iot-serve`) embeds this document inside its per-home snapshot files
//! alongside its own sections (verdict history, drift window, WAL
//! epoch).

use std::fmt::Write as _;
use std::ops::Deref;
use std::str::FromStr;

use iot_model::{BinaryEvent, DeviceId, SystemState, Timestamp};

use crate::graph::{Dig, LaggedVar};
use crate::monitor::{AnomalousEvent, DetectorStats, PhantomStateMachine};
use crate::preprocess::FittedPreprocessor;
use crate::CausalIotError;

use super::MonitorCore;

pub(super) const MAGIC: &str = "causaliot-runtime v1";

fn parse_err(line: usize, reason: impl Into<String>) -> CausalIotError {
    CausalIotError::Model(iot_model::ModelError::ParseLog {
        line,
        reason: reason.into(),
    })
}

fn field<T: FromStr>(
    parts: &mut std::str::SplitWhitespace<'_>,
    line_no: usize,
    what: &str,
) -> Result<T, CausalIotError> {
    let token = parts
        .next()
        .ok_or_else(|| parse_err(line_no, format!("missing {what}")))?;
    token
        .parse::<T>()
        .map_err(|_| parse_err(line_no, format!("unparseable {what} `{token}`")))
}

fn parse_bool01(
    parts: &mut std::str::SplitWhitespace<'_>,
    line_no: usize,
    what: &str,
) -> Result<bool, CausalIotError> {
    match field::<u8>(parts, line_no, what)? {
        0 => Ok(false),
        1 => Ok(true),
        other => Err(parse_err(
            line_no,
            format!("{what} must be 0/1, got {other}"),
        )),
    }
}

impl<D, P> MonitorCore<D, P>
where
    D: Deref<Target = Dig>,
    P: Deref<Target = FittedPreprocessor>,
{
    pub(super) fn export_runtime_state(&self) -> String {
        let mut out = String::new();
        let stats = self.detector.stats();
        let (pm, w, next_ordinal) = self.detector.runtime_parts();
        let (step, current, hist, newest, last_dev, last_old) = pm.snapshot_parts();
        let _ = writeln!(out, "{MAGIC}");
        let _ = writeln!(
            out,
            "stats {} {} {} {}",
            stats.events, stats.contextual_alarms, stats.collective_alarms, stats.max_tracking_len
        );
        let _ = writeln!(
            out,
            "drops {} {} {}",
            self.dropped_duplicate, self.dropped_extreme, self.dropped_non_finite
        );
        let _ = writeln!(out, "next_ordinal {next_ordinal}");
        let n = current.len();
        let _ = writeln!(
            out,
            "pm {} {} {} {} {}",
            pm.tau(),
            n,
            step,
            last_dev,
            last_old as u8
        );
        let bits: String = current
            .values()
            .iter()
            .map(|&on| if on { '1' } else { '0' })
            .collect();
        let _ = writeln!(out, "pm.state {bits}");
        out.push_str("pm.newest");
        for &slot in newest {
            let _ = write!(out, " {slot}");
        }
        out.push('\n');
        let cap = pm.tau() + 1;
        for d in 0..n {
            let _ = write!(out, "pm.ring {d}");
            for &entry in &hist[d * cap..(d + 1) * cap] {
                let _ = write!(out, " {entry}");
            }
            out.push('\n');
        }
        let _ = writeln!(out, "w {}", w.len());
        for tracked in w {
            let _ = writeln!(
                out,
                "w.event {} {} {} {} {:?} {}",
                tracked.ordinal,
                tracked.event.time.as_millis(),
                tracked.event.device.index(),
                tracked.event.value as u8,
                tracked.score,
                tracked.cause_values.len()
            );
            for &(cause, value) in &tracked.cause_values {
                let _ = writeln!(
                    out,
                    "w.cause {} {} {}",
                    cause.device.index(),
                    cause.lag,
                    value as u8
                );
            }
        }
        let _ = writeln!(out, "end");
        out
    }

    pub(super) fn restore_runtime_state(&mut self, text: &str) -> Result<(), CausalIotError> {
        let expect_n = self.detector.current_state().len();
        let expect_tau = self.detector.runtime_parts().0.tau();
        let cap = expect_tau + 1;

        let mut stats: Option<DetectorStats> = None;
        let mut drops: Option<(u64, u64, u64)> = None;
        let mut next_ordinal: Option<u64> = None;
        let mut pm_head: Option<(u64, u32, bool)> = None;
        let mut state: Option<SystemState> = None;
        let mut newest: Option<Vec<u32>> = None;
        let mut hist: Vec<Option<Vec<u64>>> = vec![None; expect_n];
        let mut w: Option<Vec<AnomalousEvent>> = None;
        let mut pending_causes = 0usize;
        let mut saw_end = false;

        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if idx == 0 {
                if line != MAGIC {
                    return Err(parse_err(1, format!("bad magic `{line}`")));
                }
                continue;
            }
            if saw_end {
                return Err(parse_err(line_no, "content after `end`"));
            }
            let mut parts = line.split_whitespace();
            let key = parts.next().expect("non-empty line has a first token");
            if pending_causes > 0 && key != "w.cause" {
                return Err(parse_err(line_no, "expected w.cause record"));
            }
            match key {
                "stats" => {
                    stats = Some(DetectorStats {
                        events: field(&mut parts, line_no, "stats.events")?,
                        contextual_alarms: field(&mut parts, line_no, "stats.contextual")?,
                        collective_alarms: field(&mut parts, line_no, "stats.collective")?,
                        max_tracking_len: field(&mut parts, line_no, "stats.max_tracking")?,
                    });
                }
                "drops" => {
                    drops = Some((
                        field(&mut parts, line_no, "drops.duplicate")?,
                        field(&mut parts, line_no, "drops.extreme")?,
                        field(&mut parts, line_no, "drops.non_finite")?,
                    ));
                }
                "next_ordinal" => {
                    next_ordinal = Some(field(&mut parts, line_no, "next_ordinal")?);
                }
                "pm" => {
                    let tau: usize = field(&mut parts, line_no, "pm.tau")?;
                    let n: usize = field(&mut parts, line_no, "pm.devices")?;
                    if tau != expect_tau || n != expect_n {
                        return Err(parse_err(
                            line_no,
                            format!(
                                "snapshot shape (τ {tau}, {n} devices) does not match \
                                 the monitor (τ {expect_tau}, {expect_n} devices)"
                            ),
                        ));
                    }
                    let step: u64 = field(&mut parts, line_no, "pm.step")?;
                    let last_dev: u32 = field(&mut parts, line_no, "pm.last_dev")?;
                    let last_old = parse_bool01(&mut parts, line_no, "pm.last_old")?;
                    pm_head = Some((step, last_dev, last_old));
                }
                "pm.state" => {
                    let bits = parts
                        .next()
                        .ok_or_else(|| parse_err(line_no, "missing pm.state bits"))?;
                    if bits.len() != expect_n || !bits.bytes().all(|b| b == b'0' || b == b'1') {
                        return Err(parse_err(
                            line_no,
                            format!("pm.state must be {expect_n} 0/1 digits"),
                        ));
                    }
                    state = Some(SystemState::from_values(
                        bits.bytes().map(|b| b == b'1').collect(),
                    ));
                }
                "pm.newest" => {
                    let slots = parts
                        .by_ref()
                        .map(|token| {
                            token
                                .parse::<u32>()
                                .map_err(|_| parse_err(line_no, "unparseable pm.newest slot"))
                        })
                        .collect::<Result<Vec<u32>, _>>()?;
                    if slots.len() != expect_n || slots.iter().any(|&s| s as usize >= cap) {
                        return Err(parse_err(
                            line_no,
                            format!("pm.newest needs {expect_n} slots below {cap}"),
                        ));
                    }
                    newest = Some(slots);
                }
                "pm.ring" => {
                    let d: usize = field(&mut parts, line_no, "pm.ring device")?;
                    if d >= expect_n {
                        return Err(parse_err(
                            line_no,
                            format!("pm.ring device {d} out of range"),
                        ));
                    }
                    let entries = parts
                        .by_ref()
                        .map(|token| {
                            token
                                .parse::<u64>()
                                .map_err(|_| parse_err(line_no, "unparseable pm.ring entry"))
                        })
                        .collect::<Result<Vec<u64>, _>>()?;
                    if entries.len() != cap {
                        return Err(parse_err(
                            line_no,
                            format!("pm.ring needs {cap} entries, got {}", entries.len()),
                        ));
                    }
                    hist[d] = Some(entries);
                }
                "w" => {
                    let len: usize = field(&mut parts, line_no, "w length")?;
                    w = Some(Vec::with_capacity(len.min(4096)));
                }
                "w.event" => {
                    let w = w
                        .as_mut()
                        .ok_or_else(|| parse_err(line_no, "w.event before w header"))?;
                    let ordinal: u64 = field(&mut parts, line_no, "w.event ordinal")?;
                    let millis: u64 = field(&mut parts, line_no, "w.event millis")?;
                    let device: usize = field(&mut parts, line_no, "w.event device")?;
                    if device >= expect_n {
                        return Err(parse_err(
                            line_no,
                            format!("w.event device {device} out of range"),
                        ));
                    }
                    let value = parse_bool01(&mut parts, line_no, "w.event value")?;
                    let score: f64 = field(&mut parts, line_no, "w.event score")?;
                    pending_causes = field(&mut parts, line_no, "w.event cause count")?;
                    w.push(AnomalousEvent {
                        ordinal,
                        event: BinaryEvent::new(
                            Timestamp::from_millis(millis),
                            DeviceId::from_index(device),
                            value,
                        ),
                        cause_values: Vec::with_capacity(pending_causes.min(256)),
                        score,
                    });
                }
                "w.cause" => {
                    if pending_causes == 0 {
                        return Err(parse_err(line_no, "unexpected w.cause record"));
                    }
                    let device: usize = field(&mut parts, line_no, "w.cause device")?;
                    let lag: usize = field(&mut parts, line_no, "w.cause lag")?;
                    if device >= expect_n || lag == 0 || lag > expect_tau {
                        return Err(parse_err(
                            line_no,
                            format!("w.cause ({device}, lag {lag}) out of range"),
                        ));
                    }
                    let value = parse_bool01(&mut parts, line_no, "w.cause value")?;
                    let tracked = w
                        .as_mut()
                        .and_then(|w| w.last_mut())
                        .ok_or_else(|| parse_err(line_no, "w.cause before w.event"))?;
                    tracked
                        .cause_values
                        .push((LaggedVar::new(DeviceId::from_index(device), lag), value));
                    pending_causes -= 1;
                }
                "end" => {
                    saw_end = true;
                }
                other => {
                    return Err(parse_err(line_no, format!("unknown record `{other}`")));
                }
            }
            if parts.next().is_some() && key != "end" {
                return Err(parse_err(line_no, format!("trailing tokens on `{key}`")));
            }
        }

        // The parsers report missing sections with line 0; path-attaching
        // wrappers map those to truncation, mirroring the checkpoint
        // loader's contract.
        if !saw_end {
            return Err(parse_err(0, "missing `end` sentinel"));
        }
        if pending_causes > 0 {
            return Err(parse_err(0, "missing w.cause records"));
        }
        let stats = stats.ok_or_else(|| parse_err(0, "missing stats record"))?;
        let (dup, extreme, non_finite) =
            drops.ok_or_else(|| parse_err(0, "missing drops record"))?;
        let next_ordinal = next_ordinal.ok_or_else(|| parse_err(0, "missing next_ordinal"))?;
        let (step, last_dev, last_old) =
            pm_head.ok_or_else(|| parse_err(0, "missing pm record"))?;
        let state = state.ok_or_else(|| parse_err(0, "missing pm.state record"))?;
        let newest = newest.ok_or_else(|| parse_err(0, "missing pm.newest record"))?;
        let mut flat_hist = Vec::with_capacity(expect_n * cap);
        for (d, ring) in hist.into_iter().enumerate() {
            let ring = ring.ok_or_else(|| parse_err(0, format!("missing pm.ring {d} record")))?;
            flat_hist.extend_from_slice(&ring);
        }
        let w = w.ok_or_else(|| parse_err(0, "missing w record"))?;

        let pm = PhantomStateMachine::from_snapshot_parts(
            expect_tau, step, state, flat_hist, newest, last_dev, last_old,
        );
        self.detector.restore_runtime(pm, w, next_ordinal, stats);
        self.dropped_duplicate = dup;
        self.dropped_extreme = extreme;
        self.dropped_non_finite = non_finite;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::CausalIot;
    use iot_model::{Attribute, DeviceRegistry, Room};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn fitted() -> (DeviceRegistry, crate::pipeline::FittedModel) {
        let mut reg = DeviceRegistry::new();
        reg.add("PE_room", Attribute::PresenceSensor, Room::new("room"))
            .unwrap();
        reg.add("S_lamp", Attribute::Switch, Room::new("room"))
            .unwrap();
        let pe = reg.id_of("PE_room").unwrap();
        let lamp = reg.id_of("S_lamp").unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let mut events = Vec::new();
        for i in 0..300u64 {
            let t = i * 60;
            let on = rng.gen_bool(0.5);
            events.push(BinaryEvent::new(Timestamp::from_secs(t), pe, on));
            if rng.gen_bool(0.9) {
                events.push(BinaryEvent::new(Timestamp::from_secs(t + 15), lamp, on));
            }
        }
        let model = CausalIot::builder()
            .tau(2)
            .k_max(3)
            .build()
            .fit_binary(&reg, &events)
            .unwrap();
        (reg, model)
    }

    fn stream(seed: u64, len: u64) -> Vec<BinaryEvent> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..len)
            .map(|i| {
                BinaryEvent::new(
                    Timestamp::from_secs(400_000 + i * 30),
                    DeviceId::from_index(rng.gen_range(0..2)),
                    rng.gen_bool(0.5),
                )
            })
            .collect()
    }

    #[test]
    fn restored_monitor_continues_bit_identically() {
        let (_reg, model) = fitted();
        let mut original = model.clone().into_monitor();
        for &event in &stream(11, 157) {
            original.observe(event);
        }
        let doc = original.export_runtime_state();

        let mut restored = model.clone().into_monitor();
        restored.restore_runtime_state(&doc).expect("restore");
        assert_eq!(restored.current_state(), original.current_state());
        assert_eq!(restored.tracking_len(), original.tracking_len());

        // The decisive property: every subsequent verdict is identical.
        for &event in &stream(12, 157) {
            assert_eq!(original.observe(event), restored.observe(event));
        }
    }

    #[test]
    fn export_is_byte_stable_across_restore() {
        let (_reg, model) = fitted();
        let mut original = model.clone().into_monitor();
        for &event in &stream(21, 93) {
            original.observe(event);
        }
        let doc = original.export_runtime_state();
        let mut restored = model.clone().into_monitor();
        restored.restore_runtime_state(&doc).expect("restore");
        assert_eq!(restored.export_runtime_state(), doc);
    }

    #[test]
    fn borrowing_monitor_exports_the_same_document() {
        let (_reg, model) = fitted();
        let mut owned = model.clone().into_monitor();
        let mut borrowed = model.monitor();
        for &event in &stream(31, 64) {
            owned.observe(event);
            borrowed.observe(event);
        }
        assert_eq!(
            owned.export_runtime_state(),
            borrowed.export_runtime_state()
        );
    }

    #[test]
    fn fresh_monitor_round_trips_with_tracking_in_flight() {
        let (reg, model) = fitted();
        let lamp = reg.id_of("S_lamp").unwrap();
        let pe = reg.id_of("PE_room").unwrap();
        let mut original = model.clone().into_monitor();
        // Open a tracking chain (ghost activation) so `W` is non-empty
        // and carries cause context.
        original.observe(BinaryEvent::new(Timestamp::from_secs(500_000), pe, false));
        original.observe(BinaryEvent::new(Timestamp::from_secs(500_060), lamp, true));
        let doc = original.export_runtime_state();
        let mut restored = model.clone().into_monitor();
        restored.restore_runtime_state(&doc).expect("restore");
        assert_eq!(restored.tracking_len(), original.tracking_len());
        for &event in &stream(41, 40) {
            assert_eq!(original.observe(event), restored.observe(event));
        }
        // Distribution summaries are NaN when telemetry is disabled (and
        // NaN != NaN), so compare the counter fields individually.
        let (a, b) = (original.report(), restored.report());
        assert_eq!(a.events_observed, b.events_observed);
        assert_eq!(a.contextual_alarms, b.contextual_alarms);
        assert_eq!(a.collective_alarms, b.collective_alarms);
        assert_eq!(a.max_tracking_len, b.max_tracking_len);
    }

    #[test]
    fn corrupt_documents_fail_closed() {
        let (_reg, model) = fitted();
        let mut monitor = model.clone().into_monitor();
        for &event in &stream(51, 80) {
            monitor.observe(event);
        }
        let doc = monitor.export_runtime_state();

        let check = |mutation: &dyn Fn(&str) -> String| {
            let mut fresh = model.clone().into_monitor();
            assert!(fresh.restore_runtime_state(&mutation(&doc)).is_err());
        };
        // Bad magic.
        check(&|d| d.replacen("causaliot-runtime v1", "causaliot-runtime v9", 1));
        // Missing sections (drop the `end` sentinel / a pm.ring line).
        check(&|d| d.replacen("end\n", "", 1));
        check(&|d| d.replacen("pm.ring 0", "# pm.ring 0", 1));
        // Garbage values.
        check(&|d| d.replacen("stats ", "stats x ", 1));
        // Shape mismatch.
        check(&|d| d.replacen("pm 2 2 ", "pm 3 2 ", 1));
    }
}
