//! The end-to-end CausalIoT facade (Figure 3 of the paper).
//!
//! [`CausalIot`] bundles the Event Preprocessor, the Interaction Miner, and
//! the score-threshold calculator behind a builder; fitting produces a
//! [`FittedModel`] from which stateful [`Monitor`]s are spawned.
//!
//! Fitting itself is an explicit typed stage pipeline ([`stages`]):
//! `RawEvents → Preprocessed → Snapshotted → MinedGraph → CalibratedModel`.
//! [`CausalIot::fit`] and [`CausalIot::fit_binary`] are thin compositions
//! over those stages; callers that need to inspect intermediate artifacts
//! or resume a partially-completed fit drive a [`FitPipeline`] directly.
//! A fitted model persists as a versioned checkpoint ([`checkpoint`])
//! restorable with [`FittedModel::load`].

pub mod checkpoint;
pub mod refit;
mod runtime_state;
pub mod stages;

pub use refit::{Refit, StructuralDrift};
pub use stages::{
    CalibratedModel, FitPipeline, FitStage, MinedGraph, Preprocessed, RawEvents, Snapshotted,
};

use std::ops::Deref;
use std::sync::Arc;

use iot_model::{BinaryEvent, DeviceEvent, DeviceRegistry, EventLog, StateValue, SystemState};
use iot_telemetry::{Counter, DistributionSummary, FitReport, MonitorReport, TelemetryHandle};
use serde::{Deserialize, Serialize};

use crate::graph::{Dig, UnseenContext};
use crate::ingest::StaleSet;
use crate::miner::MinerConfig;
use crate::monitor::{DetectorConfig, KSequenceDetector, Verdict};
use crate::preprocess::{FittedPreprocessor, PreprocessConfig, TauConfig};
use crate::{CausalIotError, ConfigError};

/// How the maximum time lag τ is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TauChoice {
    /// The paper's `τ = d/v` rule on the preprocessed training events.
    Auto(TauConfig),
    /// A fixed value (the paper's evaluation uses `τ = 2`).
    Fixed(usize),
}

impl Default for TauChoice {
    fn default() -> Self {
        TauChoice::Auto(TauConfig::default())
    }
}

/// Full pipeline configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CausalIotConfig {
    /// Preprocessing knobs.
    pub preprocess: PreprocessConfig,
    /// τ selection.
    pub tau: TauChoice,
    /// Mining knobs (α, conditioning cap, smoothing, parallelism).
    pub miner: MinerConfig,
    /// Score-threshold percentile `q` (paper default: 99).
    pub q: f64,
    /// Default `k_max` for monitors spawned from the fitted model.
    pub k_max: usize,
    /// Scoring policy for unseen cause contexts.
    pub unseen: UnseenContext,
    /// The restart-on-abrupt extension flag (see
    /// [`DetectorConfig::restart_on_abrupt`]).
    pub restart_on_abrupt: bool,
    /// Fraction of the training events held out for threshold
    /// calibration. The paper computes the q-th percentile over the same
    /// events the CPTs were estimated from (in-sample); with sparse
    /// contexts that replay is optimistic, so holding out a tail of the
    /// training stream calibrates the threshold out-of-sample. `0.0`
    /// reproduces the paper.
    pub calibration_fraction: f64,
}

impl Default for CausalIotConfig {
    fn default() -> Self {
        CausalIotConfig {
            preprocess: PreprocessConfig::default(),
            tau: TauChoice::default(),
            miner: MinerConfig::default(),
            q: 99.0,
            k_max: 1,
            unseen: UnseenContext::default(),
            restart_on_abrupt: false,
            calibration_fraction: 0.0,
        }
    }
}

impl CausalIotConfig {
    /// Validates every parameter range:
    ///
    /// * `alpha ∈ (0, 1)` and `smoothing ≥ 0` (via [`MinerConfig::check`]),
    /// * `q ∈ (0, 100]`,
    /// * `k_max ≥ 1`,
    /// * a fixed `τ ≥ 1`,
    /// * `calibration_fraction ∈ [0, 0.5]` (`0` reproduces the paper's
    ///   in-sample calibration; more than half the stream held out would
    ///   starve the miner).
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the first offending parameter.
    pub fn check(&self) -> Result<(), ConfigError> {
        self.miner.check()?;
        if !(self.q > 0.0 && self.q <= 100.0) {
            return Err(ConfigError::new(
                "q",
                format!("percentile must be in (0, 100], got {}", self.q),
            ));
        }
        if self.k_max == 0 {
            return Err(ConfigError::new("k_max", "must be at least 1"));
        }
        if let TauChoice::Fixed(0) = self.tau {
            return Err(ConfigError::new("tau", "must be at least 1"));
        }
        if !(0.0..=0.5).contains(&self.calibration_fraction) {
            return Err(ConfigError::new(
                "calibration_fraction",
                format!("must be in [0, 0.5], got {}", self.calibration_fraction),
            ));
        }
        Ok(())
    }
}

/// Builder for [`CausalIot`].
#[derive(Debug, Clone, Default)]
pub struct CausalIotBuilder {
    config: CausalIotConfig,
}

impl CausalIotBuilder {
    /// Fixes τ explicitly.
    pub fn tau(mut self, tau: usize) -> Self {
        self.config.tau = TauChoice::Fixed(tau);
        self
    }

    /// Uses the `τ = d/v` rule with the given bounds.
    pub fn auto_tau(mut self, tau_config: TauConfig) -> Self {
        self.config.tau = TauChoice::Auto(tau_config);
        self
    }

    /// Sets the G² significance threshold α.
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.config.miner.alpha = alpha;
        self
    }

    /// Sets the score-threshold percentile `q`.
    pub fn q(mut self, q: f64) -> Self {
        self.config.q = q;
        self
    }

    /// Sets the default `k_max` for spawned monitors.
    pub fn k_max(mut self, k_max: usize) -> Self {
        self.config.k_max = k_max;
        self
    }

    /// Sets the unseen-context scoring policy.
    pub fn unseen(mut self, unseen: UnseenContext) -> Self {
        self.config.unseen = unseen;
        self
    }

    /// Sets the CPT Laplace smoothing (0 = plain MLE).
    pub fn smoothing(mut self, smoothing: f64) -> Self {
        self.config.miner.smoothing = smoothing;
        self
    }

    /// Caps TemporalPC's conditioning-set size.
    pub fn max_cond_size(mut self, size: usize) -> Self {
        self.config.miner.max_cond_size = size;
        self
    }

    /// Enables or disables parallel mining.
    pub fn parallel(mut self, parallel: bool) -> Self {
        self.config.miner.parallel = parallel;
        self
    }

    /// Enables the restart-on-abrupt extension.
    pub fn restart_on_abrupt(mut self, enabled: bool) -> Self {
        self.config.restart_on_abrupt = enabled;
        self
    }

    /// Holds out a tail fraction of the training events for out-of-sample
    /// threshold calibration (`0.0` = the paper's in-sample calibration).
    pub fn calibration_fraction(mut self, fraction: f64) -> Self {
        self.config.calibration_fraction = fraction;
        self
    }

    /// Overrides the whole preprocessing configuration.
    pub fn preprocess(mut self, preprocess: PreprocessConfig) -> Self {
        self.config.preprocess = preprocess;
        self
    }

    /// Finalises the pipeline, validating every parameter range first
    /// (see [`CausalIotConfig::check`]).
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the first out-of-range parameter:
    /// `alpha ∉ (0, 1)`, `q ∉ (0, 100]`, `k_max < 1`, a fixed `τ < 1`,
    /// negative smoothing, or `calibration_fraction ∉ [0, 0.5]`.
    pub fn try_build(self) -> Result<CausalIot, ConfigError> {
        self.config.check()?;
        Ok(CausalIot {
            config: self.config,
        })
    }

    /// Finalises the pipeline; the infallible spelling of
    /// [`CausalIotBuilder::try_build`].
    ///
    /// # Panics
    ///
    /// Panics on any configuration [`CausalIotBuilder::try_build`] would
    /// reject — out-of-range `alpha`, `q`, `k_max`, fixed `τ`, smoothing,
    /// or `calibration_fraction`.
    pub fn build(self) -> CausalIot {
        match self.try_build() {
            Ok(pipeline) => pipeline,
            Err(e) => panic!("CausalIotBuilder::build: {e}"),
        }
    }
}

/// The unfitted CausalIoT pipeline.
#[derive(Debug, Clone, Default)]
pub struct CausalIot {
    config: CausalIotConfig,
}

impl CausalIot {
    /// Starts a builder with paper-default parameters.
    pub fn builder() -> CausalIotBuilder {
        CausalIotBuilder::default()
    }

    /// Creates a pipeline from an explicit configuration.
    pub fn with_config(config: CausalIotConfig) -> Self {
        CausalIot { config }
    }

    /// The configuration.
    pub fn config(&self) -> &CausalIotConfig {
        &self.config
    }

    /// Fits the full pipeline on a **raw** training log: preprocessing,
    /// τ selection, TemporalPC mining, CPT estimation, and threshold
    /// calculation.
    ///
    /// # Errors
    ///
    /// Returns [`CausalIotError::InvalidConfig`] for out-of-range
    /// parameters and [`CausalIotError::InsufficientTrainingData`] when
    /// fewer preprocessed events remain than τ requires.
    pub fn fit(
        &self,
        registry: &DeviceRegistry,
        log: &EventLog,
    ) -> Result<FittedModel, CausalIotError> {
        self.fit_with_telemetry(registry, log, &TelemetryHandle::from_env())
    }

    /// Like [`CausalIot::fit`] with an explicit [`TelemetryHandle`] instead
    /// of the `CAUSALIOT_TELEMETRY`-derived one. The handle is retained by
    /// the fitted model so spawned monitors report to the same registry;
    /// a disabled handle (the default elsewhere) keeps overhead at one
    /// branch per instrumentation point.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CausalIot::fit`].
    pub fn fit_with_telemetry(
        &self,
        registry: &DeviceRegistry,
        log: &EventLog,
        telemetry: &TelemetryHandle,
    ) -> Result<FittedModel, CausalIotError> {
        let pipeline = FitPipeline::new(self.config.clone(), telemetry.clone())?;
        let raw = RawEvents::new(registry, log);
        let preprocessed = pipeline.preprocess(raw)?;
        pipeline.resume_from(preprocessed)
    }

    /// Fits the pipeline on already-binarised events (skips sanitation and
    /// type unification — useful when the caller preprocesses, e.g. the
    /// synthetic evaluation harness).
    ///
    /// # Errors
    ///
    /// Same conditions as [`CausalIot::fit`].
    pub fn fit_binary(
        &self,
        registry: &DeviceRegistry,
        events: &[BinaryEvent],
    ) -> Result<FittedModel, CausalIotError> {
        self.fit_binary_with_telemetry(registry, events, &TelemetryHandle::from_env())
    }

    /// Like [`CausalIot::fit_binary`] with an explicit [`TelemetryHandle`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`CausalIot::fit`].
    pub fn fit_binary_with_telemetry(
        &self,
        registry: &DeviceRegistry,
        events: &[BinaryEvent],
        telemetry: &TelemetryHandle,
    ) -> Result<FittedModel, CausalIotError> {
        let pipeline = FitPipeline::new(self.config.clone(), telemetry.clone())?;
        let preprocessed = pipeline.ingest_binary(registry.len(), events.to_vec());
        pipeline.resume_from(preprocessed)
    }
}

/// The immutable fit artefacts, shared by every handle to the model.
#[derive(Debug)]
struct ModelInner {
    dig: Arc<Dig>,
    threshold: f64,
    preprocessor: Option<Arc<FittedPreprocessor>>,
    config: CausalIotConfig,
    final_train_state: SystemState,
    num_devices: usize,
    fit_report: FitReport,
    telemetry: TelemetryHandle,
}

/// A fitted CausalIoT model: the mined DIG, the calibrated threshold, and
/// the preprocessing state needed to consume runtime events.
///
/// The fit artefacts are immutable and `Arc`-backed, so cloning a
/// `FittedModel` is a reference-count bump — share one fitted model across
/// threads, spawn any number of concurrent [`OwnedMonitor`]s from it (via
/// [`FittedModel::into_monitor`]), or keep using the borrowing
/// [`FittedModel::monitor`] for single-threaded sessions. Both monitor
/// flavours run the identical detector core.
#[derive(Debug, Clone)]
pub struct FittedModel {
    inner: Arc<ModelInner>,
}

impl FittedModel {
    /// Assembles a model from its finished fit artefacts — the terminal
    /// step of the stage pipeline, also used by checkpoint restoration.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        dig: Dig,
        threshold: f64,
        preprocessor: Option<FittedPreprocessor>,
        config: CausalIotConfig,
        final_train_state: SystemState,
        num_devices: usize,
        fit_report: FitReport,
        telemetry: TelemetryHandle,
    ) -> Self {
        FittedModel {
            inner: Arc::new(ModelInner {
                dig: Arc::new(dig),
                threshold,
                preprocessor: preprocessor.map(Arc::new),
                config,
                final_train_state,
                num_devices,
                fit_report,
                telemetry,
            }),
        }
    }

    /// Serialises the full model — DIG with exact CPT counts, threshold,
    /// pipeline configuration, fitted preprocessor, and final training
    /// state — to the versioned `causaliot-model v2` checkpoint format.
    ///
    /// The output is plain text, diff-friendly, and byte-stable: saving a
    /// loaded checkpoint reproduces the input byte-for-byte, and a
    /// restored model's monitors emit verdict-for-verdict identical output
    /// (see [`checkpoint`] for the format grammar).
    pub fn save(&self) -> String {
        checkpoint::save_model(self)
    }

    /// CRC32 content hash of this model's serialised checkpoint — the
    /// value the `# crc32` footer of [`FittedModel::save_to_path`]
    /// records (see [`checkpoint::content_hash`]). Because
    /// [`FittedModel::save`] is byte-stable, equal models hash equally
    /// across processes; content-addressed model stores use this as the
    /// blob key.
    pub fn content_hash(&self) -> u32 {
        checkpoint::content_hash(&self.save())
    }

    /// Restores a model persisted by [`FittedModel::save`], using the
    /// `CAUSALIOT_TELEMETRY`-derived telemetry handle (mirroring
    /// [`CausalIot::fit`]).
    ///
    /// Accepts both the full `causaliot-model v2` checkpoint and the
    /// legacy dig-only `causaliot-dig v1` format ([`crate::graph::save_dig`]);
    /// a v1 model restores with paper-default configuration, no
    /// preprocessor, and an all-OFF initial state.
    ///
    /// # Errors
    ///
    /// Returns [`CausalIotError::Model`] for unsupported versions,
    /// malformed lines, or inconsistent indices.
    pub fn load(text: &str) -> Result<FittedModel, CausalIotError> {
        Self::load_with_telemetry(text, &TelemetryHandle::from_env())
    }

    /// Like [`FittedModel::load`] with an explicit [`TelemetryHandle`];
    /// monitors spawned from the restored model report to it.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FittedModel::load`].
    pub fn load_with_telemetry(
        text: &str,
        telemetry: &TelemetryHandle,
    ) -> Result<FittedModel, CausalIotError> {
        checkpoint::load_model(text, telemetry)
    }

    /// Writes the checkpoint to `path` **crash-safely**: the document plus
    /// a CRC32 footer goes to a temporary sibling, is fsynced, and is
    /// atomically renamed into place — an interrupted save at any byte
    /// leaves the previous checkpoint intact (see
    /// [`checkpoint::save_model_to_path`]).
    ///
    /// # Errors
    ///
    /// [`CausalIotError::Io`] with the path and OS error attached.
    pub fn save_to_path(&self, path: impl AsRef<std::path::Path>) -> Result<(), CausalIotError> {
        checkpoint::save_model_to_path(self, path.as_ref())
    }

    /// Restores a model from a checkpoint file, verifying its CRC32
    /// footer when present (checkpoints from older builds, without a
    /// footer, still load), using the `CAUSALIOT_TELEMETRY`-derived
    /// telemetry handle.
    ///
    /// # Errors
    ///
    /// [`CausalIotError::Io`] when the file cannot be read,
    /// [`CausalIotError::Truncated`] / [`CausalIotError::Corrupt`] (with
    /// path and byte offset) when its content fails validation — a
    /// corrupt checkpoint fails closed, never a garbage model.
    pub fn load_from_path(
        path: impl AsRef<std::path::Path>,
    ) -> Result<FittedModel, CausalIotError> {
        Self::load_from_path_with_telemetry(path, &TelemetryHandle::from_env())
    }

    /// Like [`FittedModel::load_from_path`] with an explicit
    /// [`TelemetryHandle`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`FittedModel::load_from_path`].
    pub fn load_from_path_with_telemetry(
        path: impl AsRef<std::path::Path>,
        telemetry: &TelemetryHandle,
    ) -> Result<FittedModel, CausalIotError> {
        checkpoint::load_model_from_path(path.as_ref(), telemetry)
    }

    /// The mined Device Interaction Graph.
    pub fn dig(&self) -> &Dig {
        &self.inner.dig
    }

    /// The calibrated contextual-anomaly threshold `c`.
    pub fn threshold(&self) -> f64 {
        self.inner.threshold
    }

    /// The τ the model was mined with.
    pub fn tau(&self) -> usize {
        self.inner.dig.tau()
    }

    /// The fitted preprocessor (absent for models fitted on binary
    /// events).
    pub fn preprocessor(&self) -> Option<&FittedPreprocessor> {
        self.inner.preprocessor.as_deref()
    }

    /// The system state at the end of training (monitors resume from it).
    pub fn final_train_state(&self) -> &SystemState {
        &self.inner.final_train_state
    }

    /// The pipeline configuration the model was fitted with.
    pub fn config(&self) -> &CausalIotConfig {
        &self.inner.config
    }

    /// The fit's observability report: preprocessing counts, mining
    /// statistics, stage wall times, and the calibration-score
    /// distribution. Always populated — the stage timings cost a handful
    /// of `Instant` reads even with telemetry disabled.
    pub fn fit_report(&self) -> &FitReport {
        &self.inner.fit_report
    }

    /// The telemetry handle the model was fitted with (disabled unless one
    /// was passed or `CAUSALIOT_TELEMETRY` selected a sink).
    pub fn telemetry(&self) -> &TelemetryHandle {
        &self.inner.telemetry
    }

    fn detector_config(&self, k_max: usize) -> DetectorConfig {
        DetectorConfig {
            threshold: self.inner.threshold,
            k_max,
            unseen: self.inner.config.unseen,
            restart_on_abrupt: self.inner.config.restart_on_abrupt,
        }
    }

    fn monitor_counters(&self) -> (Counter, Counter, Counter) {
        (
            self.inner.telemetry.counter("monitor.drop.duplicate"),
            self.inner.telemetry.counter("monitor.drop.extreme"),
            self.inner.telemetry.counter("monitor.drop.non_finite"),
        )
    }

    /// Spawns a monitor resuming from the end-of-training state, with the
    /// configured `k_max`.
    pub fn monitor(&self) -> Monitor<'_> {
        self.monitor_with(
            self.inner.config.k_max,
            self.inner.final_train_state.clone(),
        )
    }

    /// Spawns a monitor with an explicit `k_max` and initial state.
    ///
    /// # Panics
    ///
    /// Panics if `k_max == 0`.
    pub fn monitor_with(&self, k_max: usize, initial: SystemState) -> Monitor<'_> {
        let mut detector =
            KSequenceDetector::new(&*self.inner.dig, initial, self.detector_config(k_max));
        detector.set_telemetry(&self.inner.telemetry);
        let (drop_duplicate_counter, drop_extreme_counter, drop_non_finite_counter) =
            self.monitor_counters();
        Monitor {
            core: MonitorCore {
                detector,
                preprocessor: self.inner.preprocessor.as_deref(),
                batch: Vec::new(),
                dropped_duplicate: 0,
                dropped_extreme: 0,
                dropped_non_finite: 0,
                drop_duplicate_counter,
                drop_extreme_counter,
                drop_non_finite_counter,
            },
        }
    }

    /// Converts the model handle into an [`OwnedMonitor`] — `Send +
    /// 'static`, resuming from the end-of-training state with the
    /// configured `k_max`.
    ///
    /// `FittedModel` is cheaply cloneable, so spawning one monitor per
    /// thread is `model.clone().into_monitor()`; every monitor shares the
    /// same `Arc`-backed DIG and preprocessor.
    pub fn into_monitor(self) -> OwnedMonitor {
        let k_max = self.inner.config.k_max;
        let initial = self.inner.final_train_state.clone();
        self.into_monitor_with(k_max, initial)
    }

    /// Converts the model handle into an [`OwnedMonitor`] with an explicit
    /// `k_max` and initial state.
    ///
    /// # Panics
    ///
    /// Panics if `k_max == 0`.
    pub fn into_monitor_with(self, k_max: usize, initial: SystemState) -> OwnedMonitor {
        let mut detector = KSequenceDetector::new(
            Arc::clone(&self.inner.dig),
            initial,
            self.detector_config(k_max),
        );
        detector.set_telemetry(&self.inner.telemetry);
        let (drop_duplicate_counter, drop_extreme_counter, drop_non_finite_counter) =
            self.monitor_counters();
        OwnedMonitor {
            core: MonitorCore {
                detector,
                preprocessor: self.inner.preprocessor.clone(),
                batch: Vec::new(),
                dropped_duplicate: 0,
                dropped_extreme: 0,
                dropped_non_finite: 0,
                drop_duplicate_counter,
                drop_extreme_counter,
                drop_non_finite_counter,
            },
        }
    }

    /// Number of devices the model covers.
    pub fn num_devices(&self) -> usize {
        self.inner.num_devices
    }

    /// Builds a [`DriftDetector`](crate::monitor::DriftDetector) against
    /// this model's DIG, calibrated threshold, and percentile `q` — the
    /// baseline a served score stream is compared to.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] if `config` fails
    /// [`DriftConfig::check`](crate::monitor::DriftConfig::check).
    pub fn drift_detector(
        &self,
        config: crate::monitor::DriftConfig,
    ) -> Result<crate::monitor::DriftDetector, ConfigError> {
        crate::monitor::DriftDetector::new(
            &self.inner.dig,
            self.inner.threshold,
            self.inner.config.q,
            config,
        )
    }
}

/// Why a raw event was dropped instead of scored — by
/// [`Monitor::observe_raw`]'s preprocessing checks or by the
/// [`crate::ingest`] guard's dead-letter path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DropReason {
    /// The event reported the device's current binary state (a duplicated
    /// state report).
    Duplicate,
    /// The reading fell outside the fitted three-sigma band.
    Extreme,
    /// The numeric reading was NaN or infinite.
    NonFinite,
    /// The timestamp regressed further than the configured `max_skew`
    /// behind the stream's watermark — a clock fault, not mere reordering.
    ClockRegression,
    /// The event arrived after the reorder window's watermark had passed
    /// its timestamp (too late to reinsert in order, but within
    /// `max_skew`).
    LateArrival,
    /// The event names a device the model was not fitted on.
    UnknownDevice,
    /// The device re-reported an identical reading more times in a row
    /// than the configured flood limit allows.
    DuplicateFlood,
}

impl std::fmt::Display for DropReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DropReason::Duplicate => write!(f, "duplicate state report"),
            DropReason::Extreme => write!(f, "extreme reading"),
            DropReason::NonFinite => write!(f, "non-finite reading"),
            DropReason::ClockRegression => write!(f, "timestamp regressed beyond max_skew"),
            DropReason::LateArrival => write!(f, "arrived after the reorder watermark"),
            DropReason::UnknownDevice => write!(f, "unknown device"),
            DropReason::DuplicateFlood => write!(f, "duplicate flood"),
        }
    }
}

impl std::error::Error for DropReason {}

/// One observation for the unified monitor entry point
/// ([`Monitor::observe_with`] / [`OwnedMonitor::observe_with`]): either an
/// already-binarised event or a raw platform event still to be sanitised
/// and binarised against the fitted preprocessor.
#[derive(Debug, Clone, Copy)]
pub enum Observation<'a> {
    /// A preprocessed binary event — always scored, never dropped.
    Binary(BinaryEvent),
    /// A raw platform event — runs the preprocessing checks and may be
    /// dropped with a [`DropReason`].
    Raw(&'a DeviceEvent),
}

impl From<BinaryEvent> for Observation<'_> {
    fn from(event: BinaryEvent) -> Self {
        Observation::Binary(event)
    }
}

impl<'a> From<&'a DeviceEvent> for Observation<'a> {
    fn from(event: &'a DeviceEvent) -> Self {
        Observation::Raw(event)
    }
}

/// Ambient context for [`Monitor::observe_with`] /
/// [`OwnedMonitor::observe_with`]. The default context scores at full
/// confidence; attach a [`StaleSet`] for degraded mode. Non-exhaustive so
/// future context (e.g. per-event deadlines) is not a breaking change —
/// build it with [`ObserveCtx::new`] / [`ObserveCtx::with_stale`].
#[derive(Debug, Clone, Copy, Default)]
#[non_exhaustive]
pub struct ObserveCtx<'a> {
    /// Devices currently flagged stale by the ingestion guard's liveness
    /// clock; when set, verdict confidence is discounted to the live cause
    /// fraction.
    pub stale: Option<&'a StaleSet>,
}

impl<'a> ObserveCtx<'a> {
    /// The plain full-confidence context.
    pub fn new() -> Self {
        Self::default()
    }

    /// A degraded-mode context discounting confidence against `stale`.
    pub fn with_stale(stale: &'a StaleSet) -> Self {
        Self {
            stale: Some(stale),
            ..Self::default()
        }
    }
}

/// The single monitor implementation behind both [`Monitor`] and
/// [`OwnedMonitor`]: generic over how the DIG (`D`) and the fitted
/// preprocessor (`P`) are held, so the borrowing and the owned flavour are
/// the same code and emit bit-identical verdicts by construction.
#[derive(Debug, Clone)]
struct MonitorCore<D, P>
where
    D: Deref<Target = Dig>,
    P: Deref<Target = FittedPreprocessor>,
{
    detector: KSequenceDetector<D>,
    preprocessor: Option<P>,
    /// Reusable verdict scratch backing `observe_batch`'s returned slice —
    /// cleared at the start of every batch, so no allocation after the
    /// first call at steady batch sizes.
    batch: Vec<Verdict>,
    dropped_duplicate: u64,
    dropped_extreme: u64,
    dropped_non_finite: u64,
    drop_duplicate_counter: Counter,
    drop_extreme_counter: Counter,
    drop_non_finite_counter: Counter,
}

impl<D, P> MonitorCore<D, P>
where
    D: Deref<Target = Dig>,
    P: Deref<Target = FittedPreprocessor>,
{
    /// The canonical observe entry point every public variant delegates to.
    fn observe_with(
        &mut self,
        input: Observation<'_>,
        ctx: &ObserveCtx<'_>,
    ) -> Result<Verdict, DropReason> {
        match input {
            Observation::Binary(event) => Ok(match ctx.stale {
                Some(stale) => self.detector.observe_degraded(event, stale),
                None => self.detector.observe(event),
            }),
            Observation::Raw(event) => self.observe_raw_with(event, ctx.stale),
        }
    }

    fn observe_batch(&mut self, events: &[BinaryEvent]) -> &[Verdict] {
        self.batch.clear();
        self.detector
            .observe_batch_into(events, None, &mut self.batch);
        &self.batch
    }

    fn observe_raw_with(
        &mut self,
        event: &DeviceEvent,
        stale: Option<&StaleSet>,
    ) -> Result<Verdict, DropReason> {
        let pp = self
            .preprocessor
            .as_deref()
            .expect("observe_raw requires a model fitted on raw logs");
        if let StateValue::Numeric(v) = event.value {
            if !v.is_finite() {
                self.dropped_non_finite += 1;
                self.drop_non_finite_counter.inc();
                return Err(DropReason::NonFinite);
            }
        }
        if pp.sanitizer().is_extreme(event) {
            self.dropped_extreme += 1;
            self.drop_extreme_counter.inc();
            return Err(DropReason::Extreme);
        }
        let bin = pp.binarize_event(event);
        if self.detector.current_state().get(bin.device) == bin.value {
            self.dropped_duplicate += 1;
            self.drop_duplicate_counter.inc();
            return Err(DropReason::Duplicate);
        }
        Ok(match stale {
            Some(stale) => self.detector.observe_degraded(bin, stale),
            None => self.detector.observe(bin),
        })
    }

    fn report(&self) -> MonitorReport {
        let stats = self.detector.stats();
        MonitorReport {
            events_observed: stats.events,
            dropped_duplicate: self.dropped_duplicate,
            dropped_extreme: self.dropped_extreme,
            dropped_non_finite: self.dropped_non_finite,
            contextual_alarms: stats.contextual_alarms,
            collective_alarms: stats.collective_alarms,
            max_tracking_len: stats.max_tracking_len,
            observe_latency_us: DistributionSummary::from_histogram(
                &self.detector.latency_snapshot(),
            ),
            scores: DistributionSummary::from_histogram(&self.detector.score_snapshot()),
        }
    }
}

/// A stateful runtime monitor borrowing from a fitted model.
///
/// The borrowing flavour: zero reference-count traffic, ideal for
/// single-threaded sessions that never outlive the [`FittedModel`]. For a
/// monitor that can move across threads, see [`OwnedMonitor`] — both wrap
/// the same detector core.
#[derive(Debug, Clone)]
pub struct Monitor<'a> {
    core: MonitorCore<&'a Dig, &'a FittedPreprocessor>,
}

/// A stateful runtime monitor that owns (shares) its fitted model.
///
/// `OwnedMonitor` is `Send + 'static`: the DIG and preprocessor are held
/// through `Arc`s, so it can be moved into worker threads, stored in
/// long-lived services, or driven by the `iot-serve` hub. It is created
/// with [`FittedModel::into_monitor`] (the model handle itself is a cheap
/// `Arc` clone) and behaves bit-identically to the borrowing [`Monitor`].
///
/// # Panic safety
///
/// The monitor mutates its phantom-state machine and tracking window
/// *during* [`observe`](OwnedMonitor::observe); if a call unwinds (e.g. a
/// caller-injected fault caught with `std::panic::catch_unwind`), the
/// monitor's internal state is unspecified — structurally sound (no
/// `unsafe` anywhere in this crate, and the shared `Arc`'d model data is
/// immutable, so other monitors on the same model are unaffected) but
/// possibly mid-transition. Do not feed further events to a monitor that
/// has unwound: retire it and spawn a replacement from the (untouched)
/// `FittedModel`, as the `iot-serve` hub's quarantine-and-restore path
/// does.
#[derive(Debug, Clone)]
pub struct OwnedMonitor {
    core: MonitorCore<Arc<Dig>, Arc<FittedPreprocessor>>,
}

macro_rules! monitor_methods {
    () => {
        /// The canonical observe entry point: scores one observation —
        /// binary or raw — under the given context. Every other observe
        /// variant is an `#[inline]` wrapper over this method:
        ///
        /// * [`observe`](Self::observe) =
        ///   `observe_with(Binary(e), &default)`
        /// * [`observe_raw`](Self::observe_raw) =
        ///   `observe_with(Raw(e), &default)`
        /// * [`observe_degraded`](Self::observe_degraded) =
        ///   `observe_with(Binary(e), &with_stale(s))`
        /// * [`observe_raw_degraded`](Self::observe_raw_degraded) =
        ///   `observe_with(Raw(e), &with_stale(s))`
        ///
        /// # Errors
        ///
        /// Raw observations can be dropped by preprocessing with a
        /// [`DropReason`]; binary observations are always scored, so for
        /// [`Observation::Binary`] the result is always `Ok`.
        ///
        /// # Panics
        ///
        /// Panics for raw observations if the model was fitted with
        /// [`CausalIot::fit_binary`] (no preprocessor is available).
        pub fn observe_with(
            &mut self,
            input: Observation<'_>,
            ctx: &ObserveCtx<'_>,
        ) -> Result<Verdict, DropReason> {
            self.core.observe_with(input, ctx)
        }

        /// Processes one preprocessed binary event.
        ///
        /// Equivalent to [`observe_with`](Self::observe_with) with a
        /// [`Observation::Binary`] input and the default context — prefer
        /// `observe_with` in new code.
        #[inline]
        pub fn observe(&mut self, event: BinaryEvent) -> Verdict {
            match self
                .core
                .observe_with(Observation::Binary(event), &ObserveCtx::new())
            {
                Ok(verdict) => verdict,
                Err(_) => unreachable!("binary observations are never dropped"),
            }
        }

        /// Processes a whole batch of preprocessed binary events, returning
        /// one verdict per event in stream order.
        ///
        /// Verdicts are **bit-identical** to `N` sequential
        /// [`observe`](Self::observe) calls; the batch amortises telemetry
        /// flushes (counters and the latency sample land once per batch).
        /// The returned slice borrows the monitor's internal scratch buffer
        /// and is overwritten by the next batch; use
        /// [`observe_batch_into`](Self::observe_batch_into) to accumulate
        /// into your own buffer instead.
        pub fn observe_batch(&mut self, events: &[BinaryEvent]) -> &[Verdict] {
            self.core.observe_batch(events)
        }

        /// [`observe_batch`](Self::observe_batch) appending into a
        /// caller-owned buffer (one verdict per event, pushed as each event
        /// completes — on a mid-batch panic `out` holds exactly the
        /// verdicts of the events before the panicking one).
        pub fn observe_batch_into(&mut self, events: &[BinaryEvent], out: &mut Vec<Verdict>) {
            self.core.detector.observe_batch_into(events, None, out)
        }

        /// [`observe_batch_into`](Self::observe_batch_into) with verdict
        /// materialisation elided: phantom-state transitions, tracking
        /// dynamics, [`report`](Self::report) counters, and the telemetry
        /// flush stay bit-identical to the sequential path, but no verdict
        /// or alarm payload is built — the zero-allocation hot path for
        /// callers that only consume counters (the serving hub's burst
        /// loop, when no recorder or verdict log is attached). `scored` is
        /// bumped once per completed event, so on a mid-batch panic it
        /// holds the panicking event's exact index.
        pub fn observe_batch_stats_only(&mut self, events: &[BinaryEvent], scored: &mut usize) {
            self.core.detector.observe_batch_stats_only(events, scored)
        }

        /// [`observe_batch_stats_only`](Self::observe_batch_stats_only)
        /// surfacing each event's anomaly score to `on_score` as it
        /// completes — the hook the drift detector
        /// ([`crate::monitor::DriftDetector`]) rides on the serving hot
        /// path. Side effects stay bit-identical to the stats-only
        /// path; the score is a value that path already computes.
        pub fn observe_batch_scores_only(
            &mut self,
            events: &[BinaryEvent],
            scored: &mut usize,
            on_score: &mut dyn FnMut(BinaryEvent, f64),
        ) {
            self.core
                .detector
                .observe_batch_scores_only(events, scored, on_score)
        }

        /// [`observe_batch_into`](Self::observe_batch_into) in **degraded
        /// mode**: every event is scored with its confidence discounted
        /// against `stale`, exactly as N sequential
        /// [`observe_degraded`](Self::observe_degraded) calls.
        pub fn observe_batch_degraded_into(
            &mut self,
            events: &[BinaryEvent],
            stale: &crate::ingest::StaleSet,
            out: &mut Vec<Verdict>,
        ) {
            self.core
                .detector
                .observe_batch_into(events, Some(stale), out)
        }

        /// Processes one **raw** platform event: sanitises (duplicate/extreme
        /// checks against the fitted statistics), binarises with the fitted
        /// thresholds, and feeds the detector. Returns `Err` with the
        /// [`DropReason`] when the event is dropped by preprocessing.
        ///
        /// Equivalent to [`observe_with`](Self::observe_with) with a
        /// [`Observation::Raw`] input and the default context — prefer
        /// `observe_with` in new code.
        ///
        /// # Errors
        ///
        /// [`DropReason::Extreme`] for readings outside the fitted three-sigma
        /// band, [`DropReason::Duplicate`] for events re-reporting the current
        /// binary state.
        ///
        /// # Panics
        ///
        /// Panics if the model was fitted with [`CausalIot::fit_binary`] (no
        /// preprocessor is available).
        #[inline]
        pub fn observe_raw(&mut self, event: &DeviceEvent) -> Result<Verdict, DropReason> {
            self.core
                .observe_with(Observation::Raw(event), &ObserveCtx::new())
        }

        /// [`observe`](Self::observe) under **degraded mode**: scores the
        /// event normally but discounts the verdict's
        /// [`confidence`](Verdict::confidence) by the fraction of the
        /// device's CPT parents currently flagged stale in `stale`. With an
        /// empty stale set the verdict is bit-identical to
        /// [`observe`](Self::observe).
        ///
        /// Equivalent to [`observe_with`](Self::observe_with) with a
        /// stale-carrying context — prefer `observe_with` in new code.
        #[inline]
        pub fn observe_degraded(
            &mut self,
            event: BinaryEvent,
            stale: &crate::ingest::StaleSet,
        ) -> Verdict {
            match self
                .core
                .observe_with(Observation::Binary(event), &ObserveCtx::with_stale(stale))
            {
                Ok(verdict) => verdict,
                Err(_) => unreachable!("binary observations are never dropped"),
            }
        }

        /// [`observe_raw`](Self::observe_raw) under **degraded mode**: same
        /// preprocessing checks, with the verdict's confidence discounted
        /// for stale CPT parents as in
        /// [`observe_degraded`](Self::observe_degraded).
        ///
        /// Equivalent to [`observe_with`](Self::observe_with) with a
        /// stale-carrying context — prefer `observe_with` in new code.
        ///
        /// # Errors
        ///
        /// Same [`DropReason`]s as [`observe_raw`](Self::observe_raw).
        ///
        /// # Panics
        ///
        /// Panics if the model was fitted with [`CausalIot::fit_binary`] (no
        /// preprocessor is available).
        #[inline]
        pub fn observe_raw_degraded(
            &mut self,
            event: &DeviceEvent,
            stale: &crate::ingest::StaleSet,
        ) -> Result<Verdict, DropReason> {
            self.core
                .observe_with(Observation::Raw(event), &ObserveCtx::with_stale(stale))
        }

        /// The session's observability report: events scored, drops by reason,
        /// alarms by kind, and — when the model carries an enabled telemetry
        /// handle — latency and score distributions.
        pub fn report(&self) -> MonitorReport {
            self.core.report()
        }

        /// The monitor's current system state.
        pub fn current_state(&self) -> &SystemState {
            self.core.detector.current_state()
        }

        /// Number of events currently tracked as a potential collective
        /// anomaly.
        pub fn tracking_len(&self) -> usize {
            self.core.detector.tracking_len()
        }

        /// Clears in-progress collective tracking, discarding the in-flight
        /// chain *and* its telemetry gauge — after a reset no verdict or
        /// metric can reference pre-reset events.
        pub fn reset_tracking(&mut self) {
            self.core.detector.reset_tracking()
        }

        /// Serialises the monitor's **runtime-mutable** state — detector
        /// stats, preprocessing drop counters, stream ordinal, phantom
        /// state machine, and the in-flight collective tracking window —
        /// as a byte-stable `causaliot-runtime v1` line document.
        ///
        /// The document is the live-state counterpart of a v2 checkpoint:
        /// restoring it onto a fresh monitor built from the *same* fitted
        /// model ([`restore_runtime_state`](Self::restore_runtime_state))
        /// yields bit-identical subsequent verdicts. Everything derivable
        /// from the model (score tables, config, telemetry instruments) is
        /// rebuilt rather than persisted, so documents are small and
        /// model-versioned by construction.
        pub fn export_runtime_state(&self) -> String {
            self.core.export_runtime_state()
        }

        /// Restores runtime state previously captured with
        /// [`export_runtime_state`](Self::export_runtime_state),
        /// overwriting this monitor's detector stats, drop counters,
        /// stream ordinal, phantom state machine, and tracking window.
        ///
        /// The monitor must have been built from the same fitted model
        /// that produced the document (same τ and device count — enforced;
        /// same learned parameters — the caller's contract, normally
        /// guaranteed by persisting the model checkpoint alongside).
        ///
        /// # Errors
        ///
        /// Fails closed on any malformed, truncated, or shape-mismatched
        /// document, reporting the offending line; the monitor is left
        /// untouched on error.
        pub fn restore_runtime_state(&mut self, text: &str) -> Result<(), CausalIotError> {
            self.core.restore_runtime_state(text)
        }
    };
}

impl Monitor<'_> {
    monitor_methods!();
}

impl OwnedMonitor {
    monitor_methods!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use iot_model::{Attribute, Room, StateValue, Timestamp};

    fn registry() -> DeviceRegistry {
        let mut reg = DeviceRegistry::new();
        reg.add("PE_room", Attribute::PresenceSensor, Room::new("room"))
            .unwrap();
        reg.add("S_lamp", Attribute::Switch, Room::new("room"))
            .unwrap();
        reg.add("C_door", Attribute::ContactSensor, Room::new("hall"))
            .unwrap();
        reg
    }

    /// Training events: presence toggles at random; the lamp follows each
    /// presence toggle with probability 0.9; an independent door sensor
    /// interleaves noise so the trace is genuinely stochastic.
    fn training_events(reg: &DeviceRegistry, rounds: u64) -> Vec<BinaryEvent> {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let pe = reg.id_of("PE_room").unwrap();
        let lamp = reg.id_of("S_lamp").unwrap();
        let door = reg.id_of("C_door").unwrap();
        let mut events = Vec::new();
        let (mut pe_s, mut lamp_s, mut door_s) = (false, false, false);
        for i in 0..rounds {
            let t = i * 60;
            match rng.gen_range(0..3) {
                0 => {
                    pe_s = !pe_s;
                    events.push(BinaryEvent::new(Timestamp::from_secs(t), pe, pe_s));
                    if rng.gen_bool(0.9) && lamp_s != pe_s {
                        lamp_s = pe_s;
                        events.push(BinaryEvent::new(Timestamp::from_secs(t + 15), lamp, lamp_s));
                    }
                }
                1 => {
                    door_s = !door_s;
                    events.push(BinaryEvent::new(Timestamp::from_secs(t), door, door_s));
                }
                _ => {}
            }
        }
        events
    }

    #[test]
    fn fit_binary_and_detect_ghost_activation() {
        let reg = registry();
        let events = training_events(&reg, 300);
        let model = CausalIot::builder()
            .tau(2)
            .build()
            .fit_binary(&reg, &events)
            .unwrap();
        // The mined DIG must include PE -> lamp.
        let pe = reg.id_of("PE_room").unwrap();
        let lamp = reg.id_of("S_lamp").unwrap();
        assert!(model.dig().interaction_pairs().contains(&(pe, lamp)));

        let mut monitor = model.monitor();
        // Drive the home to a known all-OFF state (normal wind-down),
        // then inject a ghost lamp activation with no presence — it
        // violates the PE -> lamp interaction.
        if monitor.current_state().get(pe) {
            monitor.observe(BinaryEvent::new(Timestamp::from_secs(99_000), pe, false));
        }
        if monitor.current_state().get(lamp) {
            monitor.observe(BinaryEvent::new(Timestamp::from_secs(99_015), lamp, false));
        }
        monitor.reset_tracking();
        let ghost = BinaryEvent::new(Timestamp::from_secs(100_000), lamp, true);
        let verdict = monitor.observe(ghost);
        assert!(
            verdict.exceeds_threshold,
            "ghost activation score {} vs threshold {}",
            verdict.score,
            model.threshold()
        );
        assert_eq!(verdict.alarms.len(), 1);
    }

    #[test]
    fn fit_raw_log_end_to_end() {
        let reg = registry();
        let pe = reg.id_of("PE_room").unwrap();
        let lamp = reg.id_of("S_lamp").unwrap();
        let mut log = EventLog::new();
        for i in 0..200u64 {
            let t = i * 60;
            let on = i % 2 == 0;
            log.push(DeviceEvent::new(
                Timestamp::from_secs(t),
                pe,
                StateValue::Binary(on),
            ));
            log.push(DeviceEvent::new(
                Timestamp::from_secs(t + 15),
                lamp,
                StateValue::Binary(on),
            ));
        }
        let model = CausalIot::builder().tau(2).build().fit(&reg, &log).unwrap();
        assert!(model.preprocessor().is_some());
        let mut monitor = model.monitor();
        // Raw duplicate: lamp reports its current state -> dropped.
        let current = monitor.current_state().get(lamp);
        let dup = DeviceEvent::new(
            Timestamp::from_secs(50_000),
            lamp,
            StateValue::Binary(current),
        );
        assert_eq!(monitor.observe_raw(&dup), Err(DropReason::Duplicate));
        // Genuine flip passes through.
        let flip = DeviceEvent::new(
            Timestamp::from_secs(50_001),
            lamp,
            StateValue::Binary(!current),
        );
        assert!(monitor.observe_raw(&flip).is_ok());
        // The session report accounts for both.
        let report = monitor.report();
        assert_eq!(report.dropped_duplicate, 1);
        assert_eq!(report.dropped_extreme, 0);
        assert_eq!(report.events_observed, 1);
    }

    #[test]
    fn invalid_configs_rejected_by_try_build() {
        let bad = |builder: CausalIotBuilder, parameter: &'static str| {
            let err = builder.try_build().expect_err(parameter);
            assert_eq!(err.parameter(), parameter, "{err}");
        };
        bad(CausalIot::builder().alpha(2.0), "alpha");
        bad(CausalIot::builder().q(150.0), "q");
        bad(CausalIot::builder().q(0.0), "q");
        bad(CausalIot::builder().k_max(0), "k_max");
        bad(CausalIot::builder().tau(0), "tau");
        bad(CausalIot::builder().smoothing(-1.0), "smoothing");
        bad(
            CausalIot::builder().calibration_fraction(0.7),
            "calibration_fraction",
        );
        assert!(CausalIot::builder().tau(2).try_build().is_ok());
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn build_panics_on_invalid_config() {
        let _ = CausalIot::builder().alpha(2.0).build();
    }

    #[test]
    fn invalid_configs_rejected_at_fit_time_too() {
        // `CausalIot::with_config` skips the builder's validation, so `fit`
        // must still reject out-of-range parameters.
        let reg = registry();
        let events = training_events(&reg, 50);
        let fit =
            |config: CausalIotConfig| CausalIot::with_config(config).fit_binary(&reg, &events);
        let mut config = CausalIotConfig::default();
        config.miner.alpha = 2.0;
        assert!(matches!(
            fit(config),
            Err(CausalIotError::InvalidConfig {
                parameter: "alpha",
                ..
            })
        ));
        let config = CausalIotConfig {
            q: 150.0,
            ..CausalIotConfig::default()
        };
        assert!(matches!(
            fit(config),
            Err(CausalIotError::InvalidConfig { parameter: "q", .. })
        ));
        let config = CausalIotConfig {
            k_max: 0,
            ..CausalIotConfig::default()
        };
        assert!(matches!(
            fit(config),
            Err(CausalIotError::InvalidConfig {
                parameter: "k_max",
                ..
            })
        ));
        let config = CausalIotConfig {
            tau: TauChoice::Fixed(0),
            ..CausalIotConfig::default()
        };
        assert!(matches!(
            fit(config),
            Err(CausalIotError::InvalidConfig {
                parameter: "tau",
                ..
            })
        ));
    }

    #[test]
    fn owned_monitor_is_send_and_static() {
        fn assert_send<T: Send + 'static>() {}
        assert_send::<OwnedMonitor>();
        assert_send::<FittedModel>();
    }

    #[test]
    fn owned_and_borrowing_monitors_emit_identical_verdicts() {
        let reg = registry();
        let events = training_events(&reg, 300);
        let model = CausalIot::builder()
            .tau(2)
            .k_max(3)
            .build()
            .fit_binary(&reg, &events)
            .unwrap();
        let mut borrowed = model.monitor();
        let mut owned = model.clone().into_monitor();
        // Replay a mix of normal traffic and ghost activations.
        let lamp = reg.id_of("S_lamp").unwrap();
        let pe = reg.id_of("PE_room").unwrap();
        let mut stream = Vec::new();
        for i in 0..200u64 {
            let t = 200_000 + i * 30;
            match i % 5 {
                0 => stream.push(BinaryEvent::new(Timestamp::from_secs(t), pe, i % 2 == 0)),
                1 => stream.push(BinaryEvent::new(Timestamp::from_secs(t), lamp, i % 2 == 0)),
                _ => stream.push(BinaryEvent::new(Timestamp::from_secs(t), lamp, i % 3 == 0)),
            }
        }
        for event in stream {
            assert_eq!(borrowed.observe(event), owned.observe(event));
        }
        assert_eq!(
            borrowed.current_state().clone(),
            owned.current_state().clone()
        );
    }

    #[test]
    fn owned_monitor_runs_on_another_thread() {
        let reg = registry();
        let events = training_events(&reg, 300);
        let model = CausalIot::builder()
            .tau(2)
            .build()
            .fit_binary(&reg, &events)
            .unwrap();
        let lamp = reg.id_of("S_lamp").unwrap();
        let mut local = model.monitor();
        let mut remote = model.clone().into_monitor();
        let ghost = BinaryEvent::new(Timestamp::from_secs(500_000), lamp, true);
        let expected = local.observe(ghost);
        let verdict = std::thread::spawn(move || remote.observe(ghost))
            .join()
            .expect("monitor thread panicked");
        assert_eq!(expected, verdict);
    }

    #[test]
    fn too_little_data_is_reported() {
        let reg = registry();
        let events = training_events(&reg, 2);
        assert!(matches!(
            CausalIot::builder()
                .tau(2)
                .build()
                .fit_binary(&reg, &events),
            Err(CausalIotError::InsufficientTrainingData { .. })
        ));
    }

    #[test]
    fn auto_tau_uses_mean_gap() {
        let reg = registry();
        let pe = reg.id_of("PE_room").unwrap();
        // An exact 30s mean gap -> tau = 60/30 = 2.
        let events: Vec<BinaryEvent> = (0..100u64)
            .map(|i| BinaryEvent::new(Timestamp::from_secs(i * 30), pe, i % 2 == 0))
            .collect();
        let model = CausalIot::builder()
            .build()
            .fit_binary(&reg, &events)
            .unwrap();
        assert_eq!(model.tau(), 2);
    }
}
