//! Versioned full-model checkpoints (`causaliot-model v2`).
//!
//! [`crate::graph::save_dig`] persists only the DIG and threshold — enough
//! to score events, but a restored process cannot rebuild a
//! [`FittedModel`]: the fitted preprocessor (binarisation thresholds,
//! three-sigma bands), the pipeline configuration, and the final training
//! state are all lost. This module persists the *complete* model so a
//! fresh process can [`FittedModel::load`] a checkpoint and spawn monitors
//! that are verdict-for-verdict identical to the originals.
//!
//! ## Grammar (line-oriented, one record per line)
//!
//! ```text
//! causaliot-model v2
//! config.q 99.0
//! config.k_max 1
//! config.unseen marginal            # marginal | uniform | max-anomaly
//! config.restart_on_abrupt false
//! config.calibration_fraction 0.0
//! config.preprocess.duplicate_rel_tol 0.02
//! config.preprocess.filter_extremes true
//! config.tau fixed 2                # or: config.tau auto <d> <min> <max>
//! config.miner.alpha 0.001
//! config.miner.max_cond_size 3
//! config.miner.smoothing 0.0
//! config.miner.parallel true
//! config.miner.ci_test g-square     # g-square | pearson-chi2
//! devices 3
//! state 010                         # final training state, one 0/1 per device
//! preprocessor present              # present | absent (fit_binary models)
//! sanitizer.duplicate_rel_tol 0.02
//! sanitizer.filter_extremes true
//! band 1 -1.0 11.0                  # device, lo, hi (numeric devices only)
//! binarizer 0 binary                # binary | responsive | ambient <threshold>
//! binarizer 1 responsive
//! binarizer 2 ambient 152.5
//! dig                               # sentinel: the rest is the embedded
//! causaliot-dig v1                  # v1 document (save_dig output, verbatim)
//! ...
//! ```
//!
//! Every float is written with Rust's `{:?}` formatting (shortest decimal
//! that parses back to identical bits), so a load→save cycle is
//! byte-stable. The embedded DIG carries raw CPT counts; Laplace
//! smoothing from `config.miner.smoothing` is re-applied on load.
//!
//! [`load_model`] also accepts the legacy dig-only `causaliot-dig v1`
//! format: such a model restores with paper-default configuration (τ fixed
//! to the stored graph's lag depth), no preprocessor, and an all-OFF
//! initial state.
//!
//! ## Crash-safe file I/O
//!
//! [`save_model_to_path`] hardens persistence against crashes and bit
//! rot: the document is written to a `<path>.tmp` sibling, fsynced, and
//! atomically renamed over the destination (so an interrupted save at any
//! byte leaves the previous checkpoint intact), and a `# crc32 <hex>`
//! footer — a comment line, invisible to both the v1 and v2 parsers, so
//! existing fixtures stay byte-compatible — lets [`load_model_from_path`]
//! fail closed with [`CausalIotError::Corrupt`] on any flipped bit
//! instead of resurrecting a garbage model. Files without the footer
//! (fixtures from older builds, hand-written documents) still load;
//! truncation and parse failures are reported with the path and byte
//! offset attached ([`CausalIotError::Truncated`] / `Corrupt`).

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use iot_model::{DeviceId, SystemState};
use iot_stats::jenks::JenksBinarizer;
use iot_stats::threesigma::ThreeSigmaBand;
use iot_telemetry::{FitReport, TelemetryHandle};

use crate::graph::{load_dig, load_dig_with_smoothing, save_dig, UnseenContext};
use crate::persist::{crc32, find_crc_footer, write_atomic, CRC_FOOTER_PREFIX};
use crate::pipeline::{CausalIotConfig, FittedModel, TauChoice};
use crate::preprocess::{DeviceBinarizer, FittedPreprocessor, FittedSanitizer, FittedUnifier};
use crate::CausalIotError;
use iot_stats::gsquare::CiTestKind;

const MAGIC: &str = "causaliot-model v2";
const DIG_SENTINEL: &str = "dig";

/// Serialises a full model to the `causaliot-model v2` text format (see
/// the [module docs](self) for the grammar). [`FittedModel::save`]
/// delegates here.
pub fn save_model(model: &FittedModel) -> String {
    let mut out = String::new();
    let config = model.config();
    let _ = writeln!(out, "{MAGIC}");
    let _ = writeln!(out, "config.q {:?}", config.q);
    let _ = writeln!(out, "config.k_max {}", config.k_max);
    let unseen = match config.unseen {
        UnseenContext::Marginal => "marginal",
        UnseenContext::Uniform => "uniform",
        UnseenContext::MaxAnomaly => "max-anomaly",
    };
    let _ = writeln!(out, "config.unseen {unseen}");
    let _ = writeln!(out, "config.restart_on_abrupt {}", config.restart_on_abrupt);
    let _ = writeln!(
        out,
        "config.calibration_fraction {:?}",
        config.calibration_fraction
    );
    let _ = writeln!(
        out,
        "config.preprocess.duplicate_rel_tol {:?}",
        config.preprocess.duplicate_rel_tol
    );
    let _ = writeln!(
        out,
        "config.preprocess.filter_extremes {}",
        config.preprocess.filter_extremes
    );
    match config.tau {
        TauChoice::Fixed(tau) => {
            let _ = writeln!(out, "config.tau fixed {tau}");
        }
        TauChoice::Auto(cfg) => {
            let _ = writeln!(
                out,
                "config.tau auto {:?} {} {}",
                cfg.max_duration_secs, cfg.min_tau, cfg.max_tau
            );
        }
    }
    let _ = writeln!(out, "config.miner.alpha {:?}", config.miner.alpha);
    let _ = writeln!(
        out,
        "config.miner.max_cond_size {}",
        config.miner.max_cond_size
    );
    let _ = writeln!(out, "config.miner.smoothing {:?}", config.miner.smoothing);
    let _ = writeln!(out, "config.miner.parallel {}", config.miner.parallel);
    let ci_test = match config.miner.ci_test {
        CiTestKind::GSquare => "g-square",
        CiTestKind::PearsonChi2 => "pearson-chi2",
    };
    let _ = writeln!(out, "config.miner.ci_test {ci_test}");
    let _ = writeln!(out, "devices {}", model.num_devices());
    let bits: String = model
        .final_train_state()
        .values()
        .iter()
        .map(|&on| if on { '1' } else { '0' })
        .collect();
    let _ = writeln!(out, "state {bits}");
    match model.preprocessor() {
        None => {
            let _ = writeln!(out, "preprocessor absent");
        }
        Some(pp) => {
            let _ = writeln!(out, "preprocessor present");
            let sanitizer = pp.sanitizer();
            let _ = writeln!(
                out,
                "sanitizer.duplicate_rel_tol {:?}",
                sanitizer.duplicate_rel_tol()
            );
            let _ = writeln!(
                out,
                "sanitizer.filter_extremes {}",
                sanitizer.filter_extremes()
            );
            for device in 0..pp.num_devices() {
                if let Some(band) = sanitizer.band(DeviceId::from_index(device)) {
                    let _ = writeln!(out, "band {device} {:?} {:?}", band.lo(), band.hi());
                }
            }
            for (device, rule) in pp.unifier().binarizers().iter().enumerate() {
                match rule {
                    DeviceBinarizer::Binary => {
                        let _ = writeln!(out, "binarizer {device} binary");
                    }
                    DeviceBinarizer::Responsive => {
                        let _ = writeln!(out, "binarizer {device} responsive");
                    }
                    DeviceBinarizer::Ambient(jenks) => {
                        let _ = writeln!(out, "binarizer {device} ambient {:?}", jenks.threshold());
                    }
                }
            }
        }
    }
    let _ = writeln!(out, "{DIG_SENTINEL}");
    out.push_str(&save_dig(model.dig(), model.threshold()));
    out
}

fn parse_err(line: usize, reason: impl Into<String>) -> CausalIotError {
    CausalIotError::Model(iot_model::ModelError::ParseLog {
        line,
        reason: reason.into(),
    })
}

/// CRC32 content hash of a serialised checkpoint document — exactly the
/// value [`save_model_to_path`] stores in the `# crc32` footer (computed
/// over the document *without* the footer line). Content-addressed model
/// repositories key blobs by this hash: because [`save_model`] is
/// byte-stable, equal models hash equally across processes and machines.
pub fn content_hash(document: &str) -> u32 {
    crc32(document.as_bytes())
}

/// Serialises `model` with the `# crc32` footer already appended and
/// returns the document together with its content hash (the footer's
/// value). This is the write-side hook for content-addressed stores: one
/// serialisation yields both the bytes to persist and the key to file
/// them under. [`save_model_to_path`] delegates here.
pub fn save_model_footered(model: &FittedModel) -> (String, u32) {
    let mut text = save_model(model);
    let checksum = crc32(text.as_bytes());
    let _ = writeln!(text, "{CRC_FOOTER_PREFIX}{checksum:08x}");
    (text, checksum)
}

fn io_err(path: &Path, e: &io::Error) -> CausalIotError {
    CausalIotError::Io {
        path: path.display().to_string(),
        reason: e.to_string(),
    }
}

/// Serialises `model` and writes it to `path` crash-safely: the document
/// plus a `# crc32` footer goes to a `<path>.tmp` sibling, is fsynced,
/// and is atomically renamed over `path` (the parent directory is synced
/// best-effort so the rename itself is durable). A crash at any byte of
/// the write leaves the previous checkpoint at `path` untouched.
/// [`FittedModel::save_to_path`] delegates here.
///
/// # Errors
///
/// [`CausalIotError::Io`] with the path and OS error attached.
pub fn save_model_to_path(model: &FittedModel, path: &Path) -> Result<(), CausalIotError> {
    let (text, _) = save_model_footered(model);
    write_atomic(path, text.as_bytes()).map_err(|e| io_err(path, &e))
}

/// Restores a model from a checkpoint file, verifying the `# crc32`
/// footer when present (files without one — fixtures from older builds,
/// hand-written documents — still load).
/// [`FittedModel::load_from_path`] delegates here.
///
/// # Errors
///
/// * [`CausalIotError::Io`] — the file could not be read (path and OS
///   error attached).
/// * [`CausalIotError::Truncated`] — the content stops mid-document (no
///   final newline, or a required section is missing); carries the byte
///   offset where it ended.
/// * [`CausalIotError::Corrupt`] — the checksum did not match or a line
///   failed to parse; carries the byte offset of the offending content.
///   A corrupt checkpoint never yields a partially-loaded model.
pub fn load_model_from_path(
    path: &Path,
    telemetry: &TelemetryHandle,
) -> Result<FittedModel, CausalIotError> {
    let text = fs::read_to_string(path).map_err(|e| io_err(path, &e))?;
    let display = path.display().to_string();
    if text.is_empty() {
        return Err(CausalIotError::Truncated {
            path: display,
            offset: 0,
        });
    }
    if !text.ends_with('\n') {
        // The format is line-oriented and every writer ends with a
        // newline; a missing one is the signature of a torn write.
        return Err(CausalIotError::Truncated {
            path: display,
            offset: text.len() as u64,
        });
    }
    if let Some(footer_start) = find_crc_footer(&text) {
        let footer = text[footer_start..].trim_end();
        let stored = footer
            .strip_prefix(CRC_FOOTER_PREFIX)
            .expect("footer located by prefix");
        let stored =
            u32::from_str_radix(stored.trim(), 16).map_err(|_| CausalIotError::Corrupt {
                path: display.clone(),
                offset: footer_start as u64,
                reason: format!("unparseable checksum footer `{footer}`"),
            })?;
        let computed = crc32(&text.as_bytes()[..footer_start]);
        if stored != computed {
            return Err(CausalIotError::Corrupt {
                path: display,
                offset: footer_start as u64,
                reason: format!("checksum mismatch (stored {stored:08x}, computed {computed:08x})"),
            });
        }
    }
    load_model(&text, telemetry).map_err(|e| attach_context(e, &display, &text))
}

/// Rewrites context-free parse errors into operator-actionable ones: a
/// parse failure on a numbered line becomes [`CausalIotError::Corrupt`]
/// with the path and the line's byte offset; a "missing section" failure
/// (the parsers report those with line 0) means the document ended early
/// and becomes [`CausalIotError::Truncated`].
fn attach_context(e: CausalIotError, path: &str, text: &str) -> CausalIotError {
    let CausalIotError::Model(iot_model::ModelError::ParseLog { line, reason }) = e else {
        return e;
    };
    if line == 0 {
        return CausalIotError::Truncated {
            path: path.to_string(),
            offset: text.len() as u64,
        };
    }
    let offset: usize = text
        .split_inclusive('\n')
        .take(line - 1)
        .map(str::len)
        .sum();
    CausalIotError::Corrupt {
        path: path.to_string(),
        offset: offset as u64,
        reason: format!("line {line}: {reason}"),
    }
}

/// Restores a model persisted by [`save_model`], or a legacy dig-only
/// `causaliot-dig v1` document. [`FittedModel::load`] delegates here.
///
/// # Errors
///
/// Returns [`CausalIotError::Model`] for unsupported versions, malformed
/// lines, or inconsistent indices, and [`CausalIotError::InvalidConfig`]
/// when the embedded configuration fails validation.
pub fn load_model(text: &str, telemetry: &TelemetryHandle) -> Result<FittedModel, CausalIotError> {
    let magic = text.lines().next().unwrap_or("").trim();
    if magic.starts_with("causaliot-dig") {
        return load_v1(text, telemetry);
    }
    if magic != MAGIC {
        if let Some(version) = magic.strip_prefix("causaliot-model ") {
            return Err(parse_err(
                1,
                format!("unsupported version `{version}` (this build reads v2)"),
            ));
        }
        return Err(parse_err(1, format!("bad magic `{magic}`")));
    }

    let mut config = CausalIotConfig::default();
    let mut num_devices: Option<usize> = None;
    let mut state: Option<SystemState> = None;
    let mut preprocessor_present: Option<bool> = None;
    let mut sanitizer_rel_tol: Option<f64> = None;
    let mut sanitizer_filter: Option<bool> = None;
    let mut bands: Vec<Option<ThreeSigmaBand>> = Vec::new();
    let mut binarizers: Vec<Option<DeviceBinarizer>> = Vec::new();
    let mut dig_start: Option<usize> = None;

    for (idx, raw) in text.lines().enumerate().skip(1) {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == DIG_SENTINEL {
            dig_start = Some(idx + 1);
            break;
        }
        let mut parts = line.split_whitespace();
        let key = parts.next().expect("non-empty line");
        let mut next_str = |what: &str| -> Result<&str, CausalIotError> {
            parts
                .next()
                .ok_or_else(|| parse_err(line_no, format!("missing {what}")))
        };
        match key {
            "config.q" => config.q = parse_f64(next_str("q")?, line_no, "q")?,
            "config.k_max" => config.k_max = parse_num(next_str("k_max")?, line_no, "k_max")?,
            "config.unseen" => {
                config.unseen = match next_str("unseen policy")? {
                    "marginal" => UnseenContext::Marginal,
                    "uniform" => UnseenContext::Uniform,
                    "max-anomaly" => UnseenContext::MaxAnomaly,
                    other => {
                        return Err(parse_err(line_no, format!("bad unseen policy `{other}`")))
                    }
                };
            }
            "config.restart_on_abrupt" => {
                config.restart_on_abrupt =
                    parse_bool(next_str("restart_on_abrupt")?, line_no, "restart_on_abrupt")?;
            }
            "config.calibration_fraction" => {
                config.calibration_fraction = parse_f64(
                    next_str("calibration_fraction")?,
                    line_no,
                    "calibration_fraction",
                )?;
            }
            "config.preprocess.duplicate_rel_tol" => {
                config.preprocess.duplicate_rel_tol =
                    parse_f64(next_str("duplicate_rel_tol")?, line_no, "duplicate_rel_tol")?;
            }
            "config.preprocess.filter_extremes" => {
                config.preprocess.filter_extremes =
                    parse_bool(next_str("filter_extremes")?, line_no, "filter_extremes")?;
            }
            "config.tau" => {
                config.tau = match next_str("tau mode")? {
                    "fixed" => TauChoice::Fixed(parse_num(next_str("tau")?, line_no, "tau")?),
                    "auto" => TauChoice::Auto(crate::preprocess::TauConfig {
                        max_duration_secs: parse_f64(
                            next_str("max_duration_secs")?,
                            line_no,
                            "max_duration_secs",
                        )?,
                        min_tau: parse_num(next_str("min_tau")?, line_no, "min_tau")?,
                        max_tau: parse_num(next_str("max_tau")?, line_no, "max_tau")?,
                    }),
                    other => return Err(parse_err(line_no, format!("bad tau mode `{other}`"))),
                };
            }
            "config.miner.alpha" => {
                config.miner.alpha = parse_f64(next_str("alpha")?, line_no, "alpha")?;
            }
            "config.miner.max_cond_size" => {
                config.miner.max_cond_size =
                    parse_num(next_str("max_cond_size")?, line_no, "max_cond_size")?;
            }
            "config.miner.smoothing" => {
                config.miner.smoothing = parse_f64(next_str("smoothing")?, line_no, "smoothing")?;
            }
            "config.miner.parallel" => {
                config.miner.parallel = parse_bool(next_str("parallel")?, line_no, "parallel")?;
            }
            "config.miner.ci_test" => {
                config.miner.ci_test = match next_str("ci_test")? {
                    "g-square" => CiTestKind::GSquare,
                    "pearson-chi2" => CiTestKind::PearsonChi2,
                    other => return Err(parse_err(line_no, format!("bad ci_test `{other}`"))),
                };
            }
            "devices" => {
                let n: usize = parse_num(next_str("device count")?, line_no, "device count")?;
                num_devices = Some(n);
                bands = vec![None; n];
                binarizers = vec![None; n];
            }
            "state" => {
                let bits = next_str("state bits")?;
                let n = num_devices.ok_or_else(|| parse_err(line_no, "state before devices"))?;
                if bits.len() != n {
                    return Err(parse_err(
                        line_no,
                        format!("state has {} bits, expected {n}", bits.len()),
                    ));
                }
                let values: Result<Vec<bool>, CausalIotError> = bits
                    .chars()
                    .map(|c| match c {
                        '0' => Ok(false),
                        '1' => Ok(true),
                        other => Err(parse_err(line_no, format!("bad state bit `{other}`"))),
                    })
                    .collect();
                state = Some(SystemState::from_values(values?));
            }
            "preprocessor" => {
                preprocessor_present = Some(match next_str("preprocessor presence")? {
                    "present" => true,
                    "absent" => false,
                    other => {
                        return Err(parse_err(
                            line_no,
                            format!("bad preprocessor presence `{other}`"),
                        ))
                    }
                });
            }
            "sanitizer.duplicate_rel_tol" => {
                sanitizer_rel_tol = Some(parse_f64(
                    next_str("duplicate_rel_tol")?,
                    line_no,
                    "duplicate_rel_tol",
                )?);
            }
            "sanitizer.filter_extremes" => {
                sanitizer_filter = Some(parse_bool(
                    next_str("filter_extremes")?,
                    line_no,
                    "filter_extremes",
                )?);
            }
            "band" => {
                let device: usize = parse_num(next_str("band device")?, line_no, "band device")?;
                let lo = parse_f64(next_str("band lo")?, line_no, "band lo")?;
                let hi = parse_f64(next_str("band hi")?, line_no, "band hi")?;
                let slot = bands
                    .get_mut(device)
                    .ok_or_else(|| parse_err(line_no, "band device out of range"))?;
                if lo > hi {
                    return Err(parse_err(line_no, "band lo exceeds hi"));
                }
                *slot = Some(ThreeSigmaBand::from_bounds(lo, hi));
            }
            "binarizer" => {
                let device: usize =
                    parse_num(next_str("binarizer device")?, line_no, "binarizer device")?;
                let rule = match next_str("binarizer kind")? {
                    "binary" => DeviceBinarizer::Binary,
                    "responsive" => DeviceBinarizer::Responsive,
                    "ambient" => DeviceBinarizer::Ambient(JenksBinarizer::with_threshold(
                        parse_f64(next_str("ambient threshold")?, line_no, "ambient threshold")?,
                    )),
                    other => {
                        return Err(parse_err(line_no, format!("bad binarizer kind `{other}`")))
                    }
                };
                let slot = binarizers
                    .get_mut(device)
                    .ok_or_else(|| parse_err(line_no, "binarizer device out of range"))?;
                *slot = Some(rule);
            }
            other => return Err(parse_err(line_no, format!("unknown record `{other}`"))),
        }
    }

    let num_devices = num_devices.ok_or_else(|| parse_err(0, "missing devices"))?;
    let final_train_state = state.ok_or_else(|| parse_err(0, "missing state"))?;
    let preprocessor_present =
        preprocessor_present.ok_or_else(|| parse_err(0, "missing preprocessor record"))?;
    let dig_start = dig_start.ok_or_else(|| parse_err(0, "missing dig section"))?;
    config.check()?;

    let preprocessor = if preprocessor_present {
        let rel_tol =
            sanitizer_rel_tol.ok_or_else(|| parse_err(0, "missing sanitizer.duplicate_rel_tol"))?;
        let filter =
            sanitizer_filter.ok_or_else(|| parse_err(0, "missing sanitizer.filter_extremes"))?;
        let rules: Result<Vec<DeviceBinarizer>, CausalIotError> = binarizers
            .into_iter()
            .enumerate()
            .map(|(device, rule)| {
                rule.ok_or_else(|| parse_err(0, format!("missing binarizer for device {device}")))
            })
            .collect();
        Some(FittedPreprocessor::from_parts(
            FittedSanitizer::from_parts(bands, rel_tol, filter),
            FittedUnifier::from_parts(rules?),
        ))
    } else {
        None
    };

    let dig_text: String = text
        .lines()
        .skip(dig_start)
        .flat_map(|line| [line, "\n"])
        .collect();
    let (dig, threshold) = load_dig_with_smoothing(&dig_text, config.miner.smoothing)
        .map_err(|e| rebase_dig_error(e, dig_start))?;
    if dig.num_devices() != num_devices {
        return Err(parse_err(
            0,
            format!(
                "dig covers {} devices, checkpoint declares {num_devices}",
                dig.num_devices()
            ),
        ));
    }

    let fit_report = structural_report(num_devices, dig.tau(), threshold, &dig);
    Ok(FittedModel::assemble(
        dig,
        threshold,
        preprocessor,
        config,
        final_train_state,
        num_devices,
        fit_report,
        telemetry.clone(),
    ))
}

/// Rebases a parse error from the embedded dig sub-document (whose line
/// numbers start at 1 at the `dig` sentinel's successor) into whole-file
/// line numbers, so downstream byte-offset reporting points at the right
/// place.
fn rebase_dig_error(e: CausalIotError, dig_start: usize) -> CausalIotError {
    match e {
        CausalIotError::Model(iot_model::ModelError::ParseLog { line, reason }) if line > 0 => {
            parse_err(line + dig_start, reason)
        }
        other => other,
    }
}

/// Restores a legacy dig-only document as a model with paper-default
/// configuration (τ fixed to the stored graph's lag depth), no
/// preprocessor, and an all-OFF initial state.
fn load_v1(text: &str, telemetry: &TelemetryHandle) -> Result<FittedModel, CausalIotError> {
    let (dig, threshold) = load_dig(text)?;
    let num_devices = dig.num_devices();
    let config = CausalIotConfig {
        tau: TauChoice::Fixed(dig.tau()),
        ..CausalIotConfig::default()
    };
    let fit_report = structural_report(num_devices, dig.tau(), threshold, &dig);
    Ok(FittedModel::assemble(
        dig,
        threshold,
        None,
        config,
        SystemState::all_off(num_devices),
        num_devices,
        fit_report,
        telemetry.clone(),
    ))
}

/// A [`FitReport`] carrying only the structural facts a checkpoint
/// preserves (counts, τ, threshold); stage timings and calibration-score
/// distributions are fit-time observations and stay at their defaults.
fn structural_report(
    num_devices: usize,
    tau: usize,
    threshold: f64,
    dig: &crate::graph::Dig,
) -> FitReport {
    FitReport {
        num_devices,
        tau,
        threshold,
        num_interactions: dig.interaction_pairs().len(),
        ..FitReport::default()
    }
}

fn parse_f64(s: &str, line: usize, what: &str) -> Result<f64, CausalIotError> {
    s.parse()
        .map_err(|_| parse_err(line, format!("bad {what} `{s}`")))
}

fn parse_num<T: std::str::FromStr>(s: &str, line: usize, what: &str) -> Result<T, CausalIotError> {
    s.parse()
        .map_err(|_| parse_err(line, format!("bad {what} `{s}`")))
}

fn parse_bool(s: &str, line: usize, what: &str) -> Result<bool, CausalIotError> {
    s.parse()
        .map_err(|_| parse_err(line, format!("bad {what} `{s}`")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::CausalIot;
    use iot_model::{
        Attribute, BinaryEvent, DeviceEvent, DeviceRegistry, EventLog, Room, StateValue, Timestamp,
    };

    fn registry() -> DeviceRegistry {
        let mut reg = DeviceRegistry::new();
        reg.add("PE_hall", Attribute::PresenceSensor, Room::new("hall"))
            .unwrap();
        reg.add("B_hall", Attribute::BrightnessSensor, Room::new("hall"))
            .unwrap();
        reg.add("W_sink", Attribute::WaterMeter, Room::new("kitchen"))
            .unwrap();
        reg
    }

    fn raw_log(reg: &DeviceRegistry) -> EventLog {
        let pe = reg.id_of("PE_hall").unwrap();
        let b = reg.id_of("B_hall").unwrap();
        let w = reg.id_of("W_sink").unwrap();
        let mut log = EventLog::new();
        for i in 0..120u64 {
            let t = i * 60;
            log.push(DeviceEvent::new(
                Timestamp::from_secs(t),
                pe,
                StateValue::Binary(i % 2 == 0),
            ));
            let lux = if i % 2 == 0 { 280.0 } else { 6.0 };
            log.push(DeviceEvent::new(
                Timestamp::from_secs(t + 10),
                b,
                StateValue::Numeric(lux + (i % 3) as f64),
            ));
            log.push(DeviceEvent::new(
                Timestamp::from_secs(t + 20),
                w,
                StateValue::Numeric(if i % 4 == 0 { 2.0 } else { 0.0 }),
            ));
        }
        log
    }

    fn fitted() -> FittedModel {
        let reg = registry();
        let log = raw_log(&reg);
        CausalIot::builder()
            .tau(2)
            .build()
            .fit(&reg, &log)
            .expect("fits")
    }

    #[test]
    fn v2_round_trip_is_byte_stable_and_verdict_identical() {
        let model = fitted();
        let text = model.save();
        assert!(text.starts_with("causaliot-model v2\n"));
        let restored = FittedModel::load(&text).expect("loads");
        assert_eq!(restored.save(), text, "save→load→save must be byte-stable");
        assert_eq!(restored.dig(), model.dig());
        assert_eq!(restored.threshold().to_bits(), model.threshold().to_bits());
        assert_eq!(restored.config(), model.config());
        assert_eq!(restored.final_train_state(), model.final_train_state());
        assert_eq!(restored.preprocessor(), model.preprocessor());
    }

    #[test]
    fn binary_fit_round_trips_without_preprocessor() {
        let mut reg = DeviceRegistry::new();
        reg.add("PE_hall", Attribute::PresenceSensor, Room::new("hall"))
            .unwrap();
        reg.add("S_lamp", Attribute::Switch, Room::new("hall"))
            .unwrap();
        let events: Vec<BinaryEvent> = (0..60u64)
            .map(|i| {
                BinaryEvent::new(
                    Timestamp::from_secs(i * 30),
                    iot_model::DeviceId::from_index((i % 2) as usize),
                    (i / 2) % 2 == 0,
                )
            })
            .collect();
        let model = CausalIot::builder()
            .tau(2)
            .build()
            .fit_binary(&reg, &events)
            .expect("fits");
        let text = model.save();
        assert!(text.contains("preprocessor absent"));
        let restored = FittedModel::load(&text).expect("loads");
        assert!(restored.preprocessor().is_none());
        assert_eq!(restored.save(), text);
        assert_eq!(restored.dig(), model.dig());
    }

    #[test]
    fn v1_documents_still_load() {
        let model = fitted();
        let v1 = crate::graph::save_dig(model.dig(), model.threshold());
        let restored = FittedModel::load(&v1).expect("v1 loads");
        assert_eq!(restored.dig(), model.dig());
        assert_eq!(restored.threshold().to_bits(), model.threshold().to_bits());
        assert!(restored.preprocessor().is_none());
        assert_eq!(
            restored.final_train_state(),
            &SystemState::all_off(model.num_devices())
        );
    }

    #[test]
    fn unknown_versions_are_rejected() {
        let err = FittedModel::load("causaliot-model v99\n")
            .unwrap_err()
            .to_string();
        assert!(
            err.contains("unsupported version") && err.contains("v99"),
            "got: {err}"
        );
        let err = FittedModel::load("not-a-checkpoint\n")
            .unwrap_err()
            .to_string();
        assert!(err.contains("bad magic"), "got: {err}");
    }

    #[test]
    fn corrupt_checkpoints_are_rejected() {
        let text = fitted().save();
        assert!(FittedModel::load(&text.replace("state ", "state 01")).is_err());
        assert!(FittedModel::load(&text.replace("binarizer 0 binary", "")).is_err());
        let no_dig: String = text
            .lines()
            .take_while(|l| *l != "dig")
            .flat_map(|l| [l, "\n"])
            .collect();
        assert!(FittedModel::load(&no_dig).is_err());
        assert!(FittedModel::load(&text.replace("config.q 99.0", "config.q 0.0")).is_err());
    }

    /// A scratch file that cleans itself up even when the test panics.
    struct ScratchFile(std::path::PathBuf);

    impl ScratchFile {
        fn new(tag: &str) -> Self {
            ScratchFile(std::env::temp_dir().join(format!(
                "causaliot_checkpoint_{tag}_{}.model",
                std::process::id()
            )))
        }

        fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for ScratchFile {
        fn drop(&mut self) {
            let _ = fs::remove_file(&self.0);
            let mut tmp = self.0.as_os_str().to_owned();
            tmp.push(".tmp");
            let _ = fs::remove_file(std::path::PathBuf::from(tmp));
        }
    }

    #[test]
    fn path_round_trip_appends_footer_and_loads_identically() {
        let model = fitted();
        let scratch = ScratchFile::new("roundtrip");
        model.save_to_path(scratch.path()).expect("saves");
        let on_disk = fs::read_to_string(scratch.path()).unwrap();
        let last = on_disk.lines().last().unwrap();
        assert!(
            last.starts_with(CRC_FOOTER_PREFIX),
            "footer missing: {last}"
        );
        assert_eq!(
            on_disk.strip_suffix(&format!("{last}\n")).unwrap(),
            model.save(),
            "the footer is the only difference from the in-memory document"
        );
        let restored = FittedModel::load_from_path(scratch.path()).expect("loads");
        assert_eq!(restored.save(), model.save());
        // No temp file left behind.
        let mut tmp = scratch.path().as_os_str().to_owned();
        tmp.push(".tmp");
        assert!(!std::path::PathBuf::from(tmp).exists());
    }

    #[test]
    fn footerless_files_still_load_from_path() {
        let model = fitted();
        let scratch = ScratchFile::new("legacy");
        fs::write(scratch.path(), model.save()).unwrap();
        let restored = FittedModel::load_from_path(scratch.path()).expect("legacy file loads");
        assert_eq!(restored.save(), model.save());
    }

    #[test]
    fn checksum_mismatch_fails_closed_with_path_and_offset() {
        let model = fitted();
        let scratch = ScratchFile::new("bitflip");
        model.save_to_path(scratch.path()).expect("saves");
        let mut bytes = fs::read(scratch.path()).unwrap();
        // Flip one bit in the middle of the document body.
        let victim = bytes.len() / 2;
        bytes[victim] ^= 0x01;
        fs::write(scratch.path(), &bytes).unwrap();
        let err = FittedModel::load_from_path(scratch.path()).unwrap_err();
        match err {
            CausalIotError::Corrupt { ref path, .. } => {
                assert!(path.contains("bitflip"), "{err}");
                assert!(err.to_string().contains("checksum mismatch"), "{err}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn truncation_is_reported_with_the_stop_offset() {
        let model = fitted();
        let scratch = ScratchFile::new("truncated");
        let full = model.save();
        // Cut mid-line: no trailing newline.
        let cut = full.len() * 2 / 3;
        fs::write(scratch.path(), &full.as_bytes()[..cut]).unwrap();
        match FittedModel::load_from_path(scratch.path()).unwrap_err() {
            CausalIotError::Truncated { offset, .. } => assert_eq!(offset, cut as u64),
            other => panic!("expected Truncated, got {other:?}"),
        }
        // Empty file.
        fs::write(scratch.path(), b"").unwrap();
        match FittedModel::load_from_path(scratch.path()).unwrap_err() {
            CausalIotError::Truncated { offset, .. } => assert_eq!(offset, 0),
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn missing_file_reports_io_with_the_path() {
        let missing = std::env::temp_dir().join("causaliot_checkpoint_does_not_exist.model");
        match FittedModel::load_from_path(&missing).unwrap_err() {
            CausalIotError::Io { path, .. } => assert!(path.contains("does_not_exist")),
            other => panic!("expected Io, got {other:?}"),
        }
    }

    #[test]
    fn parse_failures_carry_file_byte_offsets() {
        let model = fitted();
        let scratch = ScratchFile::new("badline");
        // Corrupt a body line but keep the file footerless, so the error
        // comes from the parser rather than the checksum.
        let text = model.save().replace("config.k_max 1", "config.k_max one");
        fs::write(scratch.path(), &text).unwrap();
        match FittedModel::load_from_path(scratch.path()).unwrap_err() {
            CausalIotError::Corrupt { offset, reason, .. } => {
                let line_start = text.find("config.k_max one").unwrap();
                assert_eq!(offset, line_start as u64, "{reason}");
                assert!(reason.contains("k_max"), "{reason}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn content_hash_matches_the_footer_value() {
        let model = fitted();
        let body = model.save();
        let (footered, hash) = save_model_footered(&model);
        assert_eq!(hash, content_hash(&body));
        assert_eq!(
            footered,
            format!("{body}{CRC_FOOTER_PREFIX}{hash:08x}\n"),
            "the footered document is the body plus exactly the footer line"
        );
        // The footered document must load and the value round-trips
        // through the path writer's footer.
        let scratch = ScratchFile::new("footered");
        model.save_to_path(scratch.path()).expect("saves");
        let on_disk = fs::read_to_string(scratch.path()).unwrap();
        assert_eq!(on_disk, footered);
        assert_eq!(model.content_hash(), hash);
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE 802.3 reference values ("check" vectors from the zlib docs).
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn restored_monitor_is_verdict_identical_on_raw_events() {
        let reg = registry();
        let model = fitted();
        let restored = FittedModel::load(&model.save()).expect("loads");
        let mut original = model.monitor();
        let mut replica = restored.monitor();
        let holdout = raw_log(&reg);
        for event in holdout.iter().skip(200) {
            let a = original.observe_raw(event);
            let b = replica.observe_raw(event);
            assert_eq!(a, b, "diverged at t={:?}", event.time);
        }
    }
}
