//! The staged fit pipeline:
//! `RawEvents → Preprocessed → Snapshotted → MinedGraph → CalibratedModel`.
//!
//! [`crate::CausalIot::fit`] used to be a monolith whose intermediate
//! artefacts were invisible; this module decomposes it into five explicit
//! stages, each producing an inspectable artefact:
//!
//! | stage | artefact | what it holds |
//! |---|---|---|
//! | ingest | [`RawEvents`] / binary events | the training input |
//! | [`FitPipeline::preprocess`] | [`Preprocessed`] | binarised events + fitted preprocessor + drop counts |
//! | [`FitPipeline::snapshot`] | [`Snapshotted`] | τ, derived state series, calibration split, bit-packed snapshot matrix |
//! | [`FitPipeline::mine`] | [`MinedGraph`] | the DIG + TemporalPC search statistics |
//! | [`FitPipeline::calibrate`] | [`CalibratedModel`] | the finished [`FittedModel`] + [`FitReport`] |
//!
//! Every artefact implements [`FitStage`], so a fit can be *resumed* from
//! any intermediate point with [`FitPipeline::resume_from`] — e.g. mine
//! several graphs from one preprocessing pass, or recalibrate a threshold
//! without re-mining. Each stage runs under its own telemetry span
//! (`fit.preprocess`, `fit.snapshot`, `fit.mine`, `fit.calibrate`).
//!
//! The composition `preprocess → snapshot → mine → calibrate` is
//! bit-identical to the pre-refactor monolithic fit (enforced by the
//! `staged_fit_matches_monolithic_reference` property test).

use std::time::Instant;

use iot_model::{BinaryEvent, DeviceRegistry, EventLog, StateSeries, SystemState};
use iot_stats::percentile::percentile;
use iot_telemetry::{
    Buckets, DistributionSummary, FitReport, MiningStats, PreprocessStats, StageTimings,
    TelemetryHandle,
};

use crate::graph::Dig;
use crate::miner::mine_dig_instrumented;
use crate::monitor::training_scores;
use crate::pipeline::{CausalIotConfig, FittedModel, TauChoice};
use crate::preprocess::{choose_tau, FittedPreprocessor};
use crate::snapshot::SnapshotData;
use crate::CausalIotError;

/// The staged fit pipeline: a validated configuration plus a telemetry
/// handle, exposing one method per stage and [`FitPipeline::resume_from`]
/// to run the remaining stages from any artefact.
#[derive(Debug, Clone)]
pub struct FitPipeline {
    config: CausalIotConfig,
    telemetry: TelemetryHandle,
}

impl FitPipeline {
    /// Creates a pipeline, validating every parameter range first (see
    /// [`CausalIotConfig::check`]).
    ///
    /// # Errors
    ///
    /// Returns [`CausalIotError::InvalidConfig`] naming the first
    /// out-of-range parameter.
    pub fn new(
        config: CausalIotConfig,
        telemetry: TelemetryHandle,
    ) -> Result<Self, CausalIotError> {
        config.check()?;
        Ok(FitPipeline { config, telemetry })
    }

    /// The validated configuration the stages run with.
    pub fn config(&self) -> &CausalIotConfig {
        &self.config
    }

    /// The telemetry handle stage spans and counters report to.
    pub fn telemetry(&self) -> &TelemetryHandle {
        &self.telemetry
    }

    /// Stage 1 (raw logs): fits the Event Preprocessor on the raw
    /// training log and binarises it, counting drops by reason.
    ///
    /// # Errors
    ///
    /// Returns [`CausalIotError::InsufficientTrainingData`] when the log
    /// is empty.
    pub fn preprocess(&self, raw: RawEvents<'_>) -> Result<Preprocessed, CausalIotError> {
        let started = Instant::now();
        let span = self.telemetry.span("fit.preprocess");
        let preprocessor = FittedPreprocessor::fit_instrumented(
            raw.registry,
            raw.log,
            &self.config.preprocess,
            &self.telemetry,
        )?;
        let (events, stats) = preprocessor.transform_counting(raw.log);
        span.finish();
        let preprocess_ms = started.elapsed().as_secs_f64() * 1e3;
        if self.telemetry.enabled() {
            self.telemetry
                .counter("preprocess.events_in")
                .add(stats.events_in);
            self.telemetry
                .counter("preprocess.events_out")
                .add(stats.events_out);
            self.telemetry
                .counter("preprocess.dropped_duplicate")
                .add(stats.dropped_duplicate);
            self.telemetry
                .counter("preprocess.dropped_extreme")
                .add(stats.dropped_extreme);
        }
        Ok(Preprocessed {
            num_devices: raw.registry.len(),
            events,
            preprocessor: Some(preprocessor),
            stats,
            preprocess_ms,
            started,
        })
    }

    /// Stage 1 (already-binarised events): the [`Preprocessed`] artefact
    /// for input that skips sanitation and type unification, as used by
    /// [`crate::CausalIot::fit_binary`].
    pub fn ingest_binary(&self, num_devices: usize, events: Vec<BinaryEvent>) -> Preprocessed {
        let stats = PreprocessStats {
            events_in: events.len() as u64,
            events_out: events.len() as u64,
            ..PreprocessStats::default()
        };
        Preprocessed {
            num_devices,
            events,
            preprocessor: None,
            stats,
            preprocess_ms: 0.0,
            started: Instant::now(),
        }
    }

    /// Stage 2: selects τ, derives the system-state time series, splits
    /// off the calibration tail, and builds the bit-packed snapshot
    /// matrix the miner consumes.
    ///
    /// # Errors
    ///
    /// Returns [`CausalIotError::InsufficientTrainingData`] when fewer
    /// preprocessed events remain than τ requires.
    pub fn snapshot(&self, preprocessed: Preprocessed) -> Result<Snapshotted, CausalIotError> {
        let span = self.telemetry.span("fit.snapshot");
        let tau_start = Instant::now();
        let tau = match self.config.tau {
            TauChoice::Fixed(tau) => tau,
            TauChoice::Auto(cfg) => choose_tau(&preprocessed.events, &cfg),
        };
        let tau_ms = tau_start.elapsed().as_secs_f64() * 1e3;
        let required = (tau + 1).max(10);
        if preprocessed.events.len() < required {
            return Err(CausalIotError::InsufficientTrainingData {
                events: preprocessed.events.len(),
                required,
            });
        }
        let Preprocessed {
            num_devices,
            events,
            preprocessor,
            stats,
            preprocess_ms,
            started,
        } = preprocessed;
        let initial = SystemState::all_off(num_devices);
        let series = StateSeries::derive(initial.clone(), events);
        // Mining uses the leading (1 − calibration) share of the stream;
        // the threshold percentile is computed over the held-out tail
        // (or, paper-faithfully, over the whole stream when the fraction
        // is zero).
        let calib_cut = if self.config.calibration_fraction > 0.0 {
            let keep = 1.0 - self.config.calibration_fraction;
            ((series.num_events() as f64 * keep) as usize).max(tau + 1)
        } else {
            series.num_events()
        };
        let data = if calib_cut < series.num_events() {
            let mine_series = StateSeries::derive(initial, series.events()[..calib_cut].to_vec());
            SnapshotData::from_series(&mine_series, tau)
        } else {
            SnapshotData::from_series(&series, tau)
        };
        span.finish();
        Ok(Snapshotted {
            num_devices,
            preprocessor,
            stats,
            preprocess_ms,
            started,
            tau,
            tau_ms,
            series,
            calib_cut,
            data,
        })
    }

    /// Stage 3: runs TemporalPC skeleton discovery and CPT estimation over
    /// the snapshot matrix, producing the Device Interaction Graph.
    pub fn mine(&self, snapshotted: Snapshotted) -> MinedGraph {
        let span = self.telemetry.span("fit.mine");
        let outcome = mine_dig_instrumented(&snapshotted.data, &self.config.miner, &self.telemetry);
        span.finish();
        let Snapshotted {
            num_devices,
            preprocessor,
            stats,
            preprocess_ms,
            started,
            tau,
            tau_ms,
            series,
            calib_cut,
            data: _,
        } = snapshotted;
        MinedGraph {
            num_devices,
            preprocessor,
            stats,
            preprocess_ms,
            started,
            tau,
            tau_ms,
            series,
            calib_cut,
            dig: outcome.dig,
            mining: outcome.stats,
            skeleton_ms: outcome.skeleton_ms,
            cpt_ms: outcome.cpt_ms,
        }
    }

    /// Stage 4: replays the calibration events through the mined graph,
    /// sets the contextual-anomaly threshold at the configured percentile,
    /// and assembles the final [`FittedModel`] and [`FitReport`].
    pub fn calibrate(&self, mined: MinedGraph) -> CalibratedModel {
        let span = self.telemetry.span("fit.calibrate");
        let threshold_span = self.telemetry.span("threshold.calibration");
        let threshold_start = Instant::now();
        // `series.state(0)` is the state the series was derived from —
        // all-OFF for a fresh fit, the live pre-window state for a
        // [`Refit`](crate::pipeline::Refit) — so calibration always
        // replays from the same origin the miner saw.
        let scores = if mined.calib_cut < mined.series.num_events() {
            training_scores(
                &mined.dig,
                &mined.series.events()[mined.calib_cut..],
                mined.series.state(mined.calib_cut),
                self.config.unseen,
            )
        } else {
            training_scores(
                &mined.dig,
                mined.series.events(),
                mined.series.state(0),
                self.config.unseen,
            )
        };
        let threshold = percentile(&scores, self.config.q);
        if self.telemetry.enabled() {
            let hist = self
                .telemetry
                .histogram("threshold.calibration_score", Buckets::linear(0.0, 1.0, 20));
            for &score in &scores {
                hist.observe(score);
            }
        }
        let calibration_scores = DistributionSummary::from_samples(&scores);
        let threshold_ms = threshold_start.elapsed().as_secs_f64() * 1e3;
        threshold_span.finish();
        let fit_report = FitReport {
            num_devices: mined.num_devices,
            tau: mined.tau,
            threshold,
            num_interactions: mined.dig.interaction_pairs().len(),
            preprocess: mined.stats,
            mining: mined.mining,
            stages: StageTimings {
                preprocess_ms: mined.preprocess_ms,
                tau_ms: mined.tau_ms,
                mining_ms: mined.skeleton_ms,
                cpt_ms: mined.cpt_ms,
                threshold_ms,
                total_ms: mined.started.elapsed().as_secs_f64() * 1e3,
            },
            calibration_scores,
        };
        let final_state = mined.series.state(mined.series.num_events()).clone();
        let model = FittedModel::assemble(
            mined.dig,
            threshold,
            mined.preprocessor,
            self.config.clone(),
            final_state,
            mined.num_devices,
            fit_report,
            self.telemetry.clone(),
        );
        span.finish();
        CalibratedModel { model }
    }

    /// Runs every remaining stage from `artifact` and returns the fitted
    /// model — the `resume_from` entry point shared by all stages. Passing
    /// a [`Preprocessed`] artefact runs snapshot → mine → calibrate; a
    /// [`Snapshotted`] runs mine → calibrate; a [`MinedGraph`] runs only
    /// calibration; a [`CalibratedModel`] is returned as-is.
    ///
    /// # Errors
    ///
    /// Returns [`CausalIotError::InsufficientTrainingData`] when the
    /// snapshot stage still has to run and finds too few events.
    pub fn resume_from(&self, artifact: impl FitStage) -> Result<FittedModel, CausalIotError> {
        artifact.resume(self)
    }

    /// The full composition on a raw log: preprocess → snapshot → mine →
    /// calibrate. [`crate::CausalIot::fit`] delegates here.
    ///
    /// # Errors
    ///
    /// Same conditions as [`crate::CausalIot::fit`].
    pub fn run(
        &self,
        registry: &DeviceRegistry,
        log: &EventLog,
    ) -> Result<FittedModel, CausalIotError> {
        let preprocessed = self.preprocess(RawEvents::new(registry, log))?;
        self.resume_from(preprocessed)
    }
}

/// A stage artefact the pipeline can resume from: the typed entry point
/// behind [`FitPipeline::resume_from`].
pub trait FitStage {
    /// Runs every remaining stage and returns the fitted model.
    ///
    /// # Errors
    ///
    /// Returns [`CausalIotError::InsufficientTrainingData`] when a
    /// not-yet-run stage rejects the data.
    fn resume(self, pipeline: &FitPipeline) -> Result<FittedModel, CausalIotError>;
}

/// The entry artefact: a raw device-event training log plus the registry
/// describing its devices.
#[derive(Debug, Clone, Copy)]
pub struct RawEvents<'a> {
    registry: &'a DeviceRegistry,
    log: &'a EventLog,
}

impl<'a> RawEvents<'a> {
    /// Wraps a raw training log for the preprocess stage.
    pub fn new(registry: &'a DeviceRegistry, log: &'a EventLog) -> Self {
        RawEvents { registry, log }
    }

    /// The device registry.
    pub fn registry(&self) -> &DeviceRegistry {
        self.registry
    }

    /// The raw training log.
    pub fn log(&self) -> &EventLog {
        self.log
    }
}

/// Artefact of the preprocess stage: binarised training events, the
/// fitted preprocessor (absent for pre-binarised input), and the drop
/// accounting.
#[derive(Debug, Clone)]
pub struct Preprocessed {
    num_devices: usize,
    events: Vec<BinaryEvent>,
    preprocessor: Option<FittedPreprocessor>,
    stats: PreprocessStats,
    preprocess_ms: f64,
    started: Instant,
}

impl Preprocessed {
    /// Number of devices in the home.
    pub fn num_devices(&self) -> usize {
        self.num_devices
    }

    /// The preprocessed (binarised, de-duplicated) training events.
    pub fn events(&self) -> &[BinaryEvent] {
        &self.events
    }

    /// The fitted preprocessor (`None` for pre-binarised input).
    pub fn preprocessor(&self) -> Option<&FittedPreprocessor> {
        self.preprocessor.as_ref()
    }

    /// Events in/out and drops by reason.
    pub fn stats(&self) -> &PreprocessStats {
        &self.stats
    }
}

impl FitStage for Preprocessed {
    fn resume(self, pipeline: &FitPipeline) -> Result<FittedModel, CausalIotError> {
        pipeline.snapshot(self)?.resume(pipeline)
    }
}

/// Artefact of the snapshot stage: the chosen τ, the derived state
/// series, the calibration split, and the bit-packed snapshot matrix.
#[derive(Debug, Clone)]
pub struct Snapshotted {
    num_devices: usize,
    preprocessor: Option<FittedPreprocessor>,
    stats: PreprocessStats,
    preprocess_ms: f64,
    started: Instant,
    tau: usize,
    tau_ms: f64,
    series: StateSeries,
    calib_cut: usize,
    data: SnapshotData,
}

impl Snapshotted {
    /// The maximum time lag τ (fixed or chosen by the `τ = d/v` rule).
    pub fn tau(&self) -> usize {
        self.tau
    }

    /// The derived system-state time series over the whole stream.
    pub fn series(&self) -> &StateSeries {
        &self.series
    }

    /// Index of the first calibration event: events `0..calib_cut` feed
    /// the miner, events `calib_cut..` calibrate the threshold (equal to
    /// the stream length when `calibration_fraction` is zero).
    pub fn calibration_cut(&self) -> usize {
        self.calib_cut
    }

    /// The bit-packed snapshot matrix the miner consumes (built over the
    /// mining share of the stream only).
    pub fn data(&self) -> &SnapshotData {
        &self.data
    }
}

impl FitStage for Snapshotted {
    fn resume(self, pipeline: &FitPipeline) -> Result<FittedModel, CausalIotError> {
        pipeline.mine(self).resume(pipeline)
    }
}

/// Artefact of the mining stage: the Device Interaction Graph plus the
/// TemporalPC search statistics.
#[derive(Debug, Clone)]
pub struct MinedGraph {
    num_devices: usize,
    preprocessor: Option<FittedPreprocessor>,
    stats: PreprocessStats,
    preprocess_ms: f64,
    started: Instant,
    tau: usize,
    tau_ms: f64,
    series: StateSeries,
    calib_cut: usize,
    dig: Dig,
    mining: MiningStats,
    skeleton_ms: f64,
    cpt_ms: f64,
}

impl MinedGraph {
    /// Assembles a mined-graph artefact outside the fresh-fit stage
    /// order — the entry point the incremental
    /// [`Refit`](crate::pipeline::Refit) plan uses to re-enter the
    /// pipeline at the calibration stage with a re-estimated (or
    /// re-mined) DIG over a sliding window.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_refit(
        num_devices: usize,
        preprocessor: Option<FittedPreprocessor>,
        stats: PreprocessStats,
        started: Instant,
        tau: usize,
        series: StateSeries,
        calib_cut: usize,
        dig: Dig,
        mining: MiningStats,
        skeleton_ms: f64,
        cpt_ms: f64,
    ) -> Self {
        MinedGraph {
            num_devices,
            preprocessor,
            stats,
            preprocess_ms: 0.0,
            started,
            tau,
            tau_ms: 0.0,
            series,
            calib_cut,
            dig,
            mining,
            skeleton_ms,
            cpt_ms,
        }
    }

    /// The mined Device Interaction Graph.
    pub fn dig(&self) -> &Dig {
        &self.dig
    }

    /// Aggregated TemporalPC search statistics.
    pub fn mining_stats(&self) -> &MiningStats {
        &self.mining
    }
}

impl FitStage for MinedGraph {
    fn resume(self, pipeline: &FitPipeline) -> Result<FittedModel, CausalIotError> {
        Ok(pipeline.calibrate(self).into_model())
    }
}

/// Artefact of the calibration stage: the finished [`FittedModel`] (whose
/// [`FitReport`] carries every earlier stage's statistics and timings).
#[derive(Debug, Clone)]
pub struct CalibratedModel {
    model: FittedModel,
}

impl CalibratedModel {
    /// The finished model.
    pub fn model(&self) -> &FittedModel {
        &self.model
    }

    /// Unwraps the finished model.
    pub fn into_model(self) -> FittedModel {
        self.model
    }
}

impl FitStage for CalibratedModel {
    fn resume(self, _pipeline: &FitPipeline) -> Result<FittedModel, CausalIotError> {
        Ok(self.model)
    }
}
