//! Drift detection for served models (online adaptation, stage 1).
//!
//! A fitted model encodes a home's behaviour *at training time*; homes
//! change — new routines, seasons, replaced devices — and a stale model
//! silently decays. [`DriftDetector`] watches the live score stream a
//! monitor already computes and raises a typed [`DriftReport`] when the
//! serving distribution departs from the calibration-time baseline, so
//! the serving layer can trigger an incremental refit
//! ([`crate::pipeline::stages::Refit`]) and hot-swap the result.
//!
//! Two complementary signals, both O(1) per event over one shared ring
//! buffer:
//!
//! * **Score shift** — at calibration the threshold was chosen as the
//!   q-th percentile of training scores, so in steady state roughly
//!   `1 − q/100` of events exceed it. The detector tracks the observed
//!   exceedance rate over a rolling window; a sustained excess means the
//!   score distribution itself has moved (the model is alarming on the
//!   home's *new normal*).
//! * **Likelihood decay** — per-device rolling mean log-likelihood
//!   `ln P(state | causes)` compared against the device's expected
//!   log-likelihood under its own CPT (computed once from the fitted
//!   counts). A device whose observed likelihood falls well below its
//!   training-time expectation has drifted even if it rarely crosses the
//!   alarm threshold.
//!
//! The detector is entirely passive: feeding it is opt-in (the serving
//! hub only does so when an `AdaptationPolicy` is armed), and an unarmed
//! pipeline is bit-identical to one built before this module existed.

use std::collections::VecDeque;

use iot_model::DeviceId;
use serde::{Deserialize, Serialize};

use crate::graph::Dig;
use crate::ConfigError;

/// Floor for `1 − score` before taking the log, so a score of exactly
/// 1.0 (impossible context) contributes a large-but-finite penalty.
const LOG_FLOOR: f64 = 1e-12;

/// Tuning knobs for [`DriftDetector`]. Validated by
/// [`DriftConfig::check`]; the defaults suit event streams in the
/// hundreds-to-thousands per day regime the paper's homes produce.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftConfig {
    /// Rolling window length in events. Checks only begin once the
    /// window is full.
    pub window: usize,
    /// Evaluate the drift signals every this many events (amortises the
    /// per-device scan; must be `1..=window`).
    pub check_every: usize,
    /// Minimum excess of the observed threshold-exceedance rate over the
    /// calibrated `1 − q/100` rate before a score-shift report fires
    /// (absolute rate difference in `(0, 1)`).
    pub score_shift: f64,
    /// Minimum drop of a device's rolling mean log-likelihood below its
    /// training-time expectation (in nats, `> 0`) before a
    /// likelihood-decay report fires.
    pub loglik_decay: f64,
    /// A device needs at least this many samples in the window before
    /// its likelihood is compared (guards tiny-sample noise).
    pub min_device_samples: usize,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            window: 512,
            check_every: 128,
            score_shift: 0.10,
            loglik_decay: 0.7,
            min_device_samples: 16,
        }
    }
}

impl DriftConfig {
    /// Validates every field, mirroring [`crate::CausalIotConfig::check`].
    ///
    /// # Errors
    ///
    /// [`ConfigError`] naming the offending parameter.
    pub fn check(&self) -> Result<(), ConfigError> {
        if self.window == 0 {
            return Err(ConfigError::new("drift.window", "must be at least 1"));
        }
        if self.check_every == 0 || self.check_every > self.window {
            return Err(ConfigError::new(
                "drift.check_every",
                format!("must be in 1..=window ({})", self.window),
            ));
        }
        if !(self.score_shift > 0.0 && self.score_shift < 1.0) {
            return Err(ConfigError::new(
                "drift.score_shift",
                "must be a rate excess in (0, 1)",
            ));
        }
        if !(self.loglik_decay > 0.0 && self.loglik_decay.is_finite()) {
            return Err(ConfigError::new(
                "drift.loglik_decay",
                "must be a positive number of nats",
            ));
        }
        if self.min_device_samples == 0 {
            return Err(ConfigError::new(
                "drift.min_device_samples",
                "must be at least 1",
            ));
        }
        Ok(())
    }
}

/// Which statistic tripped a [`DriftReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DriftSignal {
    /// The rolling threshold-exceedance rate rose above the calibrated
    /// `1 − q/100` by more than [`DriftConfig::score_shift`].
    ScoreShift,
    /// A device's rolling mean log-likelihood fell more than
    /// [`DriftConfig::loglik_decay`] nats below its training expectation.
    LikelihoodDecay,
}

impl std::fmt::Display for DriftSignal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriftSignal::ScoreShift => write!(f, "score-shift"),
            DriftSignal::LikelihoodDecay => write!(f, "likelihood-decay"),
        }
    }
}

/// How far past its trigger a drift signal is. Ordered: `Warning <
/// Critical`, so policies can gate on a minimum severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DriftSeverity {
    /// The signal crossed its configured trigger.
    Warning,
    /// The signal crossed **twice** its configured trigger — the
    /// distribution has moved decisively, not marginally.
    Critical,
}

impl std::fmt::Display for DriftSeverity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriftSeverity::Warning => write!(f, "warning"),
            DriftSeverity::Critical => write!(f, "critical"),
        }
    }
}

/// One detected departure of the live score stream from the calibration
/// baseline. The serving layer attaches the home identity; the core
/// detector reports the statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftReport {
    /// Which statistic fired.
    pub signal: DriftSignal,
    /// How decisively it fired.
    pub severity: DriftSeverity,
    /// Window length the statistic was computed over.
    pub window: usize,
    /// The observed value (exceedance rate for
    /// [`DriftSignal::ScoreShift`]; mean log-likelihood shortfall in nats
    /// for [`DriftSignal::LikelihoodDecay`]).
    pub observed: f64,
    /// The calibration-time baseline the observation is compared against
    /// (expected exceedance rate, or the device's expected mean
    /// log-likelihood).
    pub baseline: f64,
    /// The worst-decayed device, for [`DriftSignal::LikelihoodDecay`].
    pub device: Option<DeviceId>,
    /// Events fed to the detector when the report fired (a detection
    /// timestamp in stream coordinates).
    pub events_seen: u64,
}

/// One scored event in the rolling window.
#[derive(Debug, Clone, Copy)]
struct Sample {
    device: u32,
    exceeded: bool,
    ll: f64,
}

/// Direct-mapped memo of `score → ln(max(1 − score, floor))`.
///
/// A fitted DIG produces scores from its CPTs' finitely many probability
/// atoms (at most two per CPT context), so the live stream cycles
/// through a bounded value set; on the serving hub's batched hot path
/// the `ln` would otherwise dominate the detector's per-event cost. 256
/// slots (4 KiB) cover the atom count of realistic homes while staying
/// L1-resident; collisions just recompute. Keyed on the exact bit
/// pattern, so a hit returns precisely what the computation would — the
/// cache changes cost, never results.
#[derive(Debug, Clone)]
struct LnCache {
    keys: [u64; LN_CACHE_SLOTS],
    vals: [f64; LN_CACHE_SLOTS],
}

const LN_CACHE_SLOTS: usize = 256;

impl LnCache {
    fn new() -> Self {
        LnCache {
            // No valid score has the all-ones (negative signalling NaN)
            // bit pattern, so every slot starts guaranteed-miss.
            keys: [u64::MAX; LN_CACHE_SLOTS],
            vals: [0.0; LN_CACHE_SLOTS],
        }
    }

    #[inline]
    fn ln_one_minus(&mut self, score: f64) -> f64 {
        let bits = score.to_bits();
        // Exponent and spread-out mantissa bits, folded: distinct score
        // atoms land in distinct slots with high probability.
        let idx = ((bits >> 48) ^ (bits >> 27) ^ (bits >> 11)) as usize & (LN_CACHE_SLOTS - 1);
        if self.keys[idx] == bits {
            return self.vals[idx];
        }
        let ll = (1.0 - score).max(LOG_FLOOR).ln();
        self.keys[idx] = bits;
        self.vals[idx] = ll;
        ll
    }
}

/// Per-device rolling log-likelihood accumulator.
#[derive(Debug, Clone, Copy, Default)]
struct DeviceWindow {
    sum_ll: f64,
    count: u32,
}

/// The per-home drift detector. Feed it every `(device, score)` pair the
/// monitor computes (see `observe_batch_scores_only`); it answers with a
/// [`DriftReport`] when a drift signal trips at a check boundary.
///
/// Costs O(1) per event — one ring push/evict and a handful of float
/// ops — plus an O(devices) scan every [`DriftConfig::check_every`]
/// events, so it rides the serving hub's batched hot path without
/// disturbing its pinned ns/event budget.
#[derive(Debug, Clone)]
pub struct DriftDetector {
    config: DriftConfig,
    /// Expected per-event threshold-exceedance rate, `1 − q/100`.
    expected_exceed: f64,
    /// Calibrated contextual threshold (scores strictly above it
    /// "exceed").
    threshold: f64,
    /// Per-device expected log-likelihood under the fitted CPT counts.
    baseline_ll: Vec<f64>,
    ring: VecDeque<Sample>,
    exceed_count: usize,
    devices: Vec<DeviceWindow>,
    since_check: usize,
    events_seen: u64,
    ln_cache: LnCache,
}

impl DriftDetector {
    /// Builds a detector against a fitted DIG: `threshold` and `q` are
    /// the model's calibrated threshold and percentile (see
    /// [`crate::FittedModel::drift_detector`] for the convenience
    /// constructor that extracts them).
    ///
    /// The per-device likelihood baseline is the expectation of
    /// `ln P(state | causes)` under the device's own fitted counts —
    /// exactly what an undrifted replay of the training data would
    /// produce in the rolling mean.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] if `config` fails [`DriftConfig::check`] or `q`
    /// is outside `(0, 100]`.
    pub fn new(
        dig: &Dig,
        threshold: f64,
        q: f64,
        config: DriftConfig,
    ) -> Result<Self, ConfigError> {
        config.check()?;
        if !(q > 0.0 && q <= 100.0) {
            return Err(ConfigError::new(
                "drift.q",
                "percentile must be in (0, 100]",
            ));
        }
        let baseline_ll = (0..dig.num_devices())
            .map(|d| expected_loglik(dig, DeviceId::from_index(d)))
            .collect::<Vec<f64>>();
        let num_devices = baseline_ll.len();
        let window = config.window;
        Ok(DriftDetector {
            config,
            expected_exceed: 1.0 - q / 100.0,
            threshold,
            baseline_ll,
            // Full capacity up front: the ring reaches `window` samples
            // in steady state and must never reallocate on the hot path.
            ring: VecDeque::with_capacity(window),
            exceed_count: 0,
            devices: vec![DeviceWindow::default(); num_devices],
            since_check: 0,
            events_seen: 0,
            ln_cache: LnCache::new(),
        })
    }

    /// The validated configuration.
    pub fn config(&self) -> &DriftConfig {
        &self.config
    }

    /// Events fed so far (across resets the counter keeps running, so
    /// reports carry a monotone stream position).
    pub fn events_seen(&self) -> u64 {
        self.events_seen
    }

    /// Feeds one scored event. Returns a report when a drift signal
    /// trips at a check boundary (at most one report per
    /// [`DriftConfig::check_every`] events; the window keeps sliding
    /// either way).
    pub fn record(&mut self, device: DeviceId, score: f64) -> Option<DriftReport> {
        self.events_seen += 1;
        let ll = self.ln_cache.ln_one_minus(score);
        // Strictly above: the calibrated threshold is the q-th percentile
        // *value*, and discrete score distributions put real mass exactly
        // on it (e.g. a root device scoring its own marginal). Counting
        // ties would report that mass as drift on a perfectly clean
        // stream; strictly-above keeps the clean-stream exceedance at or
        // below the `1 − q` baseline.
        let exceeded = score > self.threshold;
        let sample = Sample {
            device: device.index() as u32,
            exceeded,
            ll,
        };
        if self.ring.len() == self.config.window {
            let old = self.ring.pop_front().expect("non-empty ring");
            self.exceed_count -= old.exceeded as usize;
            let dw = &mut self.devices[old.device as usize];
            dw.sum_ll -= old.ll;
            dw.count -= 1;
        }
        self.exceed_count += exceeded as usize;
        if let Some(dw) = self.devices.get_mut(sample.device as usize) {
            dw.sum_ll += ll;
            dw.count += 1;
        }
        self.ring.push_back(sample);

        self.since_check += 1;
        if self.ring.len() < self.config.window || self.since_check < self.config.check_every {
            return None;
        }
        self.since_check = 0;
        self.check()
    }

    /// Evaluates both signals over the (full) window.
    fn check(&self) -> Option<DriftReport> {
        let window = self.ring.len();
        let observed_rate = self.exceed_count as f64 / window as f64;
        let excess = observed_rate - self.expected_exceed;
        if excess > self.config.score_shift {
            return Some(DriftReport {
                signal: DriftSignal::ScoreShift,
                severity: severity_for(excess, self.config.score_shift),
                window,
                observed: observed_rate,
                baseline: self.expected_exceed,
                device: None,
                events_seen: self.events_seen,
            });
        }
        let mut worst: Option<(usize, f64, f64)> = None;
        for (d, dw) in self.devices.iter().enumerate() {
            if (dw.count as usize) < self.config.min_device_samples {
                continue;
            }
            let mean = dw.sum_ll / dw.count as f64;
            let shortfall = self.baseline_ll[d] - mean;
            if shortfall > self.config.loglik_decay && worst.is_none_or(|(_, _, s)| shortfall > s) {
                worst = Some((d, mean, shortfall));
            }
        }
        worst.map(|(d, mean, shortfall)| DriftReport {
            signal: DriftSignal::LikelihoodDecay,
            severity: severity_for(shortfall, self.config.loglik_decay),
            window,
            observed: mean,
            baseline: self.baseline_ll[d],
            device: Some(DeviceId::from_index(d)),
            events_seen: self.events_seen,
        })
    }

    /// Clears the window and per-device accumulators (the events-seen
    /// counter keeps running). Call after acting on a report — e.g. once
    /// a refit has been requested — so the next report reflects only
    /// post-action events.
    pub fn reset(&mut self) {
        self.ring.clear();
        self.exceed_count = 0;
        self.devices.fill(DeviceWindow::default());
        self.since_check = 0;
    }

    /// The rolling window's samples, oldest first, as `(device,
    /// exceeded-threshold, log-likelihood)` triples — together with
    /// [`Self::since_check`] and [`Self::events_seen`] the complete
    /// runtime-mutable state of the detector (the baselines, threshold,
    /// and ln-memo are rebuilt from the fitted model). The serving
    /// layer's live-state snapshots persist exactly this.
    pub fn window_samples(&self) -> impl Iterator<Item = (DeviceId, bool, f64)> + '_ {
        self.ring
            .iter()
            .map(|s| (DeviceId::from_index(s.device as usize), s.exceeded, s.ll))
    }

    /// Events recorded since the last check boundary (see
    /// [`DriftConfig::check_every`]).
    pub fn since_check(&self) -> usize {
        self.since_check
    }

    /// Restores the rolling window from samples previously exported with
    /// [`Self::window_samples`]: the ring, the exceedance count, and the
    /// per-device likelihood accumulators are rebuilt sample by sample,
    /// so a freshly built detector continues bit-identically to the one
    /// the samples were taken from. Samples beyond the configured window
    /// evict the oldest, exactly as live recording would.
    pub fn restore_window(
        &mut self,
        samples: impl IntoIterator<Item = (DeviceId, bool, f64)>,
        since_check: usize,
        events_seen: u64,
    ) {
        self.reset();
        for (device, exceeded, ll) in samples {
            if self.ring.len() == self.config.window {
                let old = self.ring.pop_front().expect("non-empty ring");
                self.exceed_count -= old.exceeded as usize;
                if let Some(dw) = self.devices.get_mut(old.device as usize) {
                    dw.sum_ll -= old.ll;
                    dw.count -= 1;
                }
            }
            self.exceed_count += exceeded as usize;
            if let Some(dw) = self.devices.get_mut(device.index()) {
                dw.sum_ll += ll;
                dw.count += 1;
            }
            self.ring.push_back(Sample {
                device: device.index() as u32,
                exceeded,
                ll,
            });
        }
        self.since_check = since_check;
        self.events_seen = events_seen;
    }
}

fn severity_for(observed_excess: f64, trigger: f64) -> DriftSeverity {
    if observed_excess > 2.0 * trigger {
        DriftSeverity::Critical
    } else {
        DriftSeverity::Warning
    }
}

/// Expectation of `ln P(state | causes)` for `device` under its own
/// fitted CPT counts: `Σ_ctx Σ_v n(ctx, v) · ln p(v | ctx) / N`. Only
/// contexts seen in training contribute (their counts are non-zero), so
/// the result is independent of the unseen-context policy. Devices with
/// no training data get a baseline of 0 and can never report decay.
fn expected_loglik(dig: &Dig, device: DeviceId) -> f64 {
    let cpt = dig.cpt(device);
    let mut sum = 0.0;
    let mut total = 0u64;
    for code in 0..cpt.num_contexts() {
        let counts = cpt.counts(code);
        let context_total = counts[0] + counts[1];
        if context_total == 0 {
            continue;
        }
        for &n in &counts {
            if n == 0 {
                continue;
            }
            let p = (n as f64 + cpt.smoothing()) / (context_total as f64 + 2.0 * cpt.smoothing());
            sum += n as f64 * p.max(LOG_FLOOR).ln();
            total += n;
        }
    }
    if total == 0 {
        0.0
    } else {
        sum / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Cpt, LaggedVar};

    fn two_device_dig() -> Dig {
        let c0 = LaggedVar::new(DeviceId::from_index(0), 1);
        let mut cpt0 = Cpt::new(vec![c0], 1.0);
        let mut cpt1 = Cpt::new(vec![c0], 1.0);
        for _ in 0..50 {
            cpt0.record(0, true);
            cpt0.record(1, false);
            cpt1.record(0, false);
            cpt1.record(1, true);
        }
        Dig::new(2, vec![vec![c0], vec![c0]], vec![cpt0, cpt1])
    }

    fn detector(config: DriftConfig) -> DriftDetector {
        DriftDetector::new(&two_device_dig(), 0.9, 95.0, config).expect("valid config")
    }

    fn small_config() -> DriftConfig {
        DriftConfig {
            window: 64,
            check_every: 16,
            min_device_samples: 8,
            ..DriftConfig::default()
        }
    }

    #[test]
    fn config_validation_names_fields() {
        let bad = DriftConfig {
            check_every: 0,
            ..DriftConfig::default()
        };
        assert_eq!(bad.check().unwrap_err().parameter(), "drift.check_every");
        let bad = DriftConfig {
            window: 0,
            ..DriftConfig::default()
        };
        assert_eq!(bad.check().unwrap_err().parameter(), "drift.window");
        let bad = DriftConfig {
            score_shift: 1.5,
            ..DriftConfig::default()
        };
        assert_eq!(bad.check().unwrap_err().parameter(), "drift.score_shift");
        let bad = DriftConfig {
            loglik_decay: 0.0,
            ..DriftConfig::default()
        };
        assert_eq!(bad.check().unwrap_err().parameter(), "drift.loglik_decay");
        let bad = DriftConfig {
            min_device_samples: 0,
            ..DriftConfig::default()
        };
        assert_eq!(
            bad.check().unwrap_err().parameter(),
            "drift.min_device_samples"
        );
        assert!(DriftConfig::default().check().is_ok());
    }

    #[test]
    fn quiet_stream_never_reports() {
        let mut det = detector(small_config());
        for i in 0..1_000u32 {
            let device = DeviceId::from_index((i % 2) as usize);
            assert_eq!(det.record(device, 0.05), None);
        }
        assert_eq!(det.events_seen(), 1_000);
    }

    #[test]
    fn sustained_exceedance_reports_score_shift() {
        let mut det = detector(small_config());
        let mut report = None;
        for i in 0..200u32 {
            let device = DeviceId::from_index((i % 2) as usize);
            // 40% of events above the 0.9 threshold vs 5% expected.
            let score = if i % 5 < 2 { 0.95 } else { 0.1 };
            if let Some(r) = det.record(device, score) {
                report = Some(r);
                break;
            }
        }
        let report = report.expect("drift must be detected");
        assert_eq!(report.signal, DriftSignal::ScoreShift);
        assert_eq!(report.severity, DriftSeverity::Critical);
        assert!(report.observed > report.baseline + 0.10);
        assert_eq!(report.window, 64);
    }

    #[test]
    fn single_device_decay_reports_likelihood_decay() {
        let mut det = detector(small_config());
        let mut report = None;
        for i in 0..200u32 {
            let device = DeviceId::from_index((i % 2) as usize);
            // Device 1 scores just *below* the alarm threshold, so the
            // exceedance rate stays quiet, but its likelihood collapses.
            let score = if device.index() == 1 { 0.89 } else { 0.02 };
            if let Some(r) = det.record(device, score) {
                report = Some(r);
                break;
            }
        }
        let report = report.expect("decay must be detected");
        assert_eq!(report.signal, DriftSignal::LikelihoodDecay);
        assert_eq!(report.device, Some(DeviceId::from_index(1)));
        assert!(report.baseline > report.observed);
    }

    #[test]
    fn reset_clears_the_window() {
        let mut det = detector(small_config());
        for i in 0..40u32 {
            det.record(DeviceId::from_index((i % 2) as usize), 0.95);
        }
        det.reset();
        // After the reset the window must refill before any check fires.
        for i in 0..63u32 {
            assert_eq!(
                det.record(DeviceId::from_index((i % 2) as usize), 0.05),
                None
            );
        }
        assert_eq!(det.events_seen(), 103);
    }

    #[test]
    fn severity_scales_with_excess() {
        assert_eq!(severity_for(0.15, 0.10), DriftSeverity::Warning);
        assert_eq!(severity_for(0.25, 0.10), DriftSeverity::Critical);
    }

    #[test]
    fn ring_eviction_keeps_counts_consistent() {
        let mut det = detector(DriftConfig {
            window: 8,
            check_every: 1,
            min_device_samples: 2,
            ..DriftConfig::default()
        });
        // Feed far more events than the window holds; counts must never
        // underflow and the exceed count must track the window contents.
        for i in 0..100u32 {
            let device = DeviceId::from_index((i % 2) as usize);
            det.record(device, if i % 3 == 0 { 0.95 } else { 0.1 });
        }
        let in_window: usize = det.ring.iter().map(|s| s.exceeded as usize).sum();
        assert_eq!(in_window, det.exceed_count);
        let per_device: u32 = det.devices.iter().map(|d| d.count).sum();
        assert_eq!(per_device as usize, det.ring.len());
    }
}
