//! The k-sequence anomaly-detection procedure (Algorithm 2).
//!
//! For each incoming event the detector computes the Eq. 1 anomaly score
//! and interprets it against the tracked anomaly list `W`:
//!
//! * `W` empty, score ≥ c — the event is a **contextual anomaly**; it
//!   opens `W` (and is reported immediately when `k_max = 1`).
//! * `W` non-empty, score < c — the event follows an interaction execution
//!   under the malicious context: it joins the **collective anomaly**.
//! * `W` non-empty, score ≥ c — an *abrupt event*: tracking ends and the
//!   collected list is reported.
//! * `|W| = k_max` — the chain reached the maximum tracked length and is
//!   reported.
//!
//! ### Fidelity note
//!
//! The paper's pseudocode checks `0 < |W| < k_max ∧ score ≥ c` *after*
//! appending, which — read literally — would flush a fresh contextual
//! anomaly before any propagation could be tracked, and silently drops the
//! abrupt event itself. We implement the evident intent (the abrupt-event
//! rule only fires for events that did **not** join `W`), keep the paper's
//! drop-the-abrupt-event semantics by default, and offer
//! [`DetectorConfig::restart_on_abrupt`] as a documented extension that
//! instead treats the abrupt event as a new contextual anomaly.

use std::ops::Deref;
use std::time::Instant;

use iot_model::{BinaryEvent, DeviceId, SystemState};
use iot_telemetry::{Buckets, Counter, Gauge, Histogram, TelemetryHandle};
use serde::{Deserialize, Serialize};

use super::PhantomStateMachine;
use crate::graph::{Dig, LaggedVar, UnseenContext};
use crate::ingest::StaleSet;

/// Configuration of the k-sequence detector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// The contextual-anomaly score threshold `c`.
    pub threshold: f64,
    /// Maximum tracked anomaly length `k_max ≥ 1` (`1` = contextual
    /// detection only).
    pub k_max: usize,
    /// Scoring policy for cause contexts unseen in training.
    pub unseen: UnseenContext,
    /// Extension: restart tracking at an abrupt event instead of dropping
    /// it (see the module docs). `false` reproduces the paper.
    pub restart_on_abrupt: bool,
}

impl DetectorConfig {
    /// Creates a configuration with the given threshold and `k_max`,
    /// paper-faithful otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `k_max == 0` or the threshold is not in `[0, 1]`.
    pub fn new(threshold: f64, k_max: usize) -> Self {
        assert!(k_max >= 1, "k_max must be at least 1");
        assert!(
            (0.0..=1.0).contains(&threshold),
            "threshold must be in [0, 1]"
        );
        DetectorConfig {
            threshold,
            k_max,
            unseen: UnseenContext::default(),
            restart_on_abrupt: false,
        }
    }
}

/// One event in a reported anomaly, with the context that explains the
/// verdict ("additional information for later anomaly interpretation",
/// Algorithm 2 line 7).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnomalousEvent {
    /// The 0-based position of the event in the observed stream (the
    /// evaluation compares alarm positions against injected positions,
    /// Section VI-C).
    pub ordinal: u64,
    /// The offending event.
    pub event: BinaryEvent,
    /// The values of the device's causes at detection time.
    pub cause_values: Vec<(LaggedVar, bool)>,
    /// The Eq. 1 anomaly score.
    pub score: f64,
}

/// What kind of anomaly an alarm reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AlarmKind {
    /// A single event violating an interaction execution (Definition 2).
    Contextual,
    /// A contextual anomaly plus the event chain that followed the
    /// unexpected interaction execution (Definition 3).
    Collective,
}

/// An alarm reported to the user for amendment (Algorithm 2 line 10).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Alarm {
    /// Contextual or collective.
    pub kind: AlarmKind,
    /// The anomalous events, oldest first; the first entry is always the
    /// triggering contextual anomaly.
    pub events: Vec<AnomalousEvent>,
    /// Whether tracking was cut short by an abrupt high-score event.
    pub ended_by_abrupt: bool,
}

impl Alarm {
    /// Length of the reported chain.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the alarm is empty (never produced by the detector).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// The detector's response to one observed event.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    /// The event's anomaly score.
    pub score: f64,
    /// Whether the score met the contextual-anomaly threshold.
    pub exceeds_threshold: bool,
    /// Alarms flushed by this event (usually zero or one; the
    /// restart-on-abrupt extension with `k_max = 1` can produce two).
    pub alarms: Vec<Alarm>,
    /// How much of the CPT context behind the score was *live* when the
    /// event was scored: the fraction of the device's causes whose parent
    /// device was not flagged stale by the ingestion guard's liveness
    /// clock. `1.0` (the value outside degraded mode, and for devices with
    /// no causes) means every conditioning parent was recently heard from;
    /// lower values mean the score conditions on state that may be frozen
    /// by a silent sensor, so the verdict deserves less trust.
    pub confidence: f64,
}

/// Always-on session counts kept by the detector — cheap plain integers,
/// available even with telemetry disabled (they feed
/// [`iot_telemetry::MonitorReport`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DetectorStats {
    /// Events scored.
    pub events: u64,
    /// Contextual alarms raised.
    pub contextual_alarms: u64,
    /// Collective alarms raised.
    pub collective_alarms: u64,
    /// Longest tracked anomaly chain observed.
    pub max_tracking_len: u64,
}

/// The detector's optional telemetry instruments, resolved once from a
/// [`TelemetryHandle`] so the per-event hot path never touches the
/// registry. Disabled instruments cost one branch per update.
#[derive(Debug, Clone, Default)]
struct DetectorInstruments {
    enabled: bool,
    events: Counter,
    latency_us: Histogram,
    scores: Histogram,
    contextual: Counter,
    collective: Counter,
    tracking_len: Gauge,
}

impl DetectorInstruments {
    fn from_handle(telemetry: &TelemetryHandle) -> Self {
        DetectorInstruments {
            enabled: telemetry.enabled(),
            events: telemetry.counter("monitor.events"),
            latency_us: telemetry.histogram(
                "monitor.observe_latency_us",
                Buckets::exponential(1.0, 2.0, 20),
            ),
            scores: telemetry.histogram("monitor.score", Buckets::linear(0.0, 1.0, 20)),
            contextual: telemetry.counter("monitor.alarms.contextual"),
            collective: telemetry.counter("monitor.alarms.collective"),
            tracking_len: telemetry.gauge("monitor.tracking_len"),
        }
    }
}

/// The k-sequence anomaly detector (Algorithm 2).
///
/// Generic over *how the mined DIG is held*: `D` is any handle that
/// dereferences to a [`Dig`]. The two instantiations used by the pipeline
/// are `&Dig` (the classic borrowing detector behind
/// [`crate::pipeline::Monitor`]) and `std::sync::Arc<Dig>` (the owned,
/// `Send + 'static` detector behind [`crate::pipeline::OwnedMonitor`]).
/// Both run the exact same code, so verdicts are bit-identical by
/// construction.
#[derive(Debug, Clone)]
pub struct KSequenceDetector<D: Deref<Target = Dig>> {
    dig: D,
    config: DetectorConfig,
    pm: PhantomStateMachine,
    w: Vec<AnomalousEvent>,
    next_ordinal: u64,
    stats: DetectorStats,
    instruments: DetectorInstruments,
}

impl<D: Deref<Target = Dig>> KSequenceDetector<D> {
    /// Creates a detector over a mined DIG, starting from `initial`.
    pub fn new(dig: D, initial: SystemState, config: DetectorConfig) -> Self {
        assert!(config.k_max >= 1, "k_max must be at least 1");
        let tau = dig.tau();
        KSequenceDetector {
            dig,
            config,
            pm: PhantomStateMachine::new(initial, tau),
            w: Vec::new(),
            next_ordinal: 0,
            stats: DetectorStats::default(),
            instruments: DetectorInstruments::default(),
        }
    }

    /// Attaches telemetry instruments (latency/score histograms, alarm
    /// counters, tracking-length gauge) resolved from `telemetry`. A
    /// disabled handle leaves the hot path at one branch per update.
    pub fn set_telemetry(&mut self, telemetry: &TelemetryHandle) {
        self.instruments = DetectorInstruments::from_handle(telemetry);
    }

    /// The always-on session counts.
    pub fn stats(&self) -> &DetectorStats {
        &self.stats
    }

    /// The configuration in use.
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    /// The phantom state machine's current system state.
    pub fn current_state(&self) -> &SystemState {
        self.pm.current()
    }

    /// Number of events currently tracked in `W`.
    pub fn tracking_len(&self) -> usize {
        self.w.len()
    }

    /// Processes one runtime event and returns the verdict.
    pub fn observe(&mut self, event: BinaryEvent) -> Verdict {
        self.observe_inner(event, 1.0)
    }

    /// [`observe`](Self::observe) in **degraded mode**: the event is
    /// scored and tracked exactly as usual (state transitions, alarms, and
    /// scores are bit-identical), but the verdict's
    /// [`confidence`](Verdict::confidence) is the fraction of the event
    /// device's CPT causes whose parent device is not in `stale`. With an
    /// empty stale set this is exactly [`observe`](Self::observe).
    pub fn observe_degraded(&mut self, event: BinaryEvent, stale: &StaleSet) -> Verdict {
        let confidence = self.cause_confidence(event.device, stale);
        self.observe_inner(event, confidence)
    }

    /// The fraction of `device`'s CPT causes whose parent device is live
    /// (not in `stale`); `1.0` for devices with no causes.
    fn cause_confidence(&self, device: DeviceId, stale: &StaleSet) -> f64 {
        let causes = self.dig.cpt(device).causes();
        if causes.is_empty() || stale.count() == 0 {
            return 1.0;
        }
        let live = causes
            .iter()
            .filter(|cause| !stale.is_stale(cause.device))
            .count();
        live as f64 / causes.len() as f64
    }

    fn observe_inner(&mut self, event: BinaryEvent, confidence: f64) -> Verdict {
        let started = if self.instruments.enabled {
            Some(Instant::now())
        } else {
            None
        };
        // Line 4-5: fetch cause values and compute the score before the
        // phantom state machine absorbs the event.
        let cpt = self.dig.cpt(event.device);
        let mut code = 0usize;
        for (bit, &cause) in cpt.causes().iter().enumerate() {
            if self.pm.cause_value_for_next(cause) {
                code |= 1 << bit;
            }
        }
        let score = 1.0 - cpt.prob(code, event.value, self.config.unseen);

        let ordinal = self.next_ordinal;
        self.next_ordinal += 1;
        let anomalous = score >= self.config.threshold;
        // Only events that can join W need their cause context materialised
        // (for "anomaly interpretation", Algorithm 2 line 7). The common
        // case — a normal event on a quiet stream — allocates nothing.
        let record = if anomalous || !self.w.is_empty() {
            let cause_values: Vec<(LaggedVar, bool)> = cpt
                .causes()
                .iter()
                .map(|&c| (c, self.pm.cause_value_for_next(c)))
                .collect();
            Some(AnomalousEvent {
                ordinal,
                event,
                cause_values,
                score,
            })
        } else {
            None
        };
        self.pm.apply(&event);

        let mut alarms = Vec::new();
        if self.w.is_empty() {
            if anomalous {
                // Line 6-8: a fresh contextual anomaly opens W.
                self.w
                    .push(record.expect("anomalous events carry a record"));
                if self.w.len() == self.config.k_max {
                    alarms.push(self.flush(false));
                }
            }
        } else if !anomalous {
            // Line 6-8: a low-score event continues the collective anomaly.
            self.w.push(record.expect("tracked events carry a record"));
            if self.w.len() == self.config.k_max {
                alarms.push(self.flush(false));
            }
        } else {
            // Line 9-12: an abrupt event ends tracking.
            alarms.push(self.flush(true));
            if self.config.restart_on_abrupt {
                self.w
                    .push(record.expect("anomalous events carry a record"));
                if self.w.len() == self.config.k_max {
                    alarms.push(self.flush(false));
                }
            }
        }
        self.stats.events += 1;
        self.stats.max_tracking_len = self.stats.max_tracking_len.max(self.w.len() as u64);
        for alarm in &alarms {
            match alarm.kind {
                AlarmKind::Contextual => self.stats.contextual_alarms += 1,
                AlarmKind::Collective => self.stats.collective_alarms += 1,
            }
        }
        if let Some(start) = started {
            self.instruments.events.inc();
            self.instruments.scores.observe(score);
            self.instruments.tracking_len.set(self.w.len() as u64);
            for alarm in &alarms {
                match alarm.kind {
                    AlarmKind::Contextual => self.instruments.contextual.inc(),
                    AlarmKind::Collective => self.instruments.collective.inc(),
                }
            }
            self.instruments
                .latency_us
                .observe(start.elapsed().as_secs_f64() * 1e6);
        }
        Verdict {
            score,
            exceeds_threshold: anomalous,
            alarms,
            confidence,
        }
    }

    /// Snapshot of the score histogram (empty unless telemetry is
    /// attached and enabled).
    pub(crate) fn score_snapshot(&self) -> iot_telemetry::HistogramSnapshot {
        self.instruments.scores.snapshot()
    }

    /// Snapshot of the per-event latency histogram, microseconds (empty
    /// unless telemetry is attached and enabled).
    pub(crate) fn latency_snapshot(&self) -> iot_telemetry::HistogramSnapshot {
        self.instruments.latency_us.snapshot()
    }

    /// Flushes `W` into an alarm.
    fn flush(&mut self, ended_by_abrupt: bool) -> Alarm {
        let events = std::mem::take(&mut self.w);
        let kind = if events.len() <= 1 {
            AlarmKind::Contextual
        } else {
            AlarmKind::Collective
        };
        Alarm {
            kind,
            events,
            ended_by_abrupt,
        }
    }

    /// Clears any in-progress tracking (the phantom state is kept).
    ///
    /// The in-flight collective-anomaly chain `W` is discarded without
    /// being reported, so no later verdict can reference pre-reset events;
    /// the tracking-length gauge is zeroed so telemetry cannot show a
    /// stale chain either.
    pub fn reset_tracking(&mut self) {
        self.w.clear();
        if self.instruments.enabled {
            self.instruments.tracking_len.set(0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Cpt;
    use iot_model::{DeviceId, Timestamp};

    fn bev(t: u64, dev: usize, on: bool) -> BinaryEvent {
        BinaryEvent::new(Timestamp::from_secs(t), DeviceId::from_index(dev), on)
    }

    /// Two devices. Device 1's CPT: strongly follows device 0's lag-1
    /// state. Device 0's CPT: flips constantly (any report is normal-ish
    /// when it alternates).
    fn two_device_dig() -> Dig {
        let c0 = LaggedVar::new(DeviceId::from_index(0), 1);
        // Device 0: autocorrelation — flips are normal, repeats are not.
        let mut cpt0 = Cpt::new(vec![c0], 0.0);
        for i in 0..100 {
            cpt0.record(0, i < 90); // was off -> mostly turns on
            cpt0.record(1, i >= 90); // was on -> mostly turns off
        }
        // Device 1: copies device 0.
        let mut cpt1 = Cpt::new(vec![c0], 0.0);
        for i in 0..100 {
            cpt1.record(0, i < 10); // cause off -> mostly off
            cpt1.record(1, i >= 10); // cause on -> mostly on
        }
        Dig::new(1, vec![vec![c0], vec![c0]], vec![cpt0, cpt1])
    }

    #[test]
    fn contextual_anomaly_with_kmax_one() {
        let dig = two_device_dig();
        let cfg = DetectorConfig::new(0.5, 1);
        let mut det = KSequenceDetector::new(&dig, SystemState::all_off(2), cfg);
        // Device 1 turning ON while device 0 is OFF: P(on | off) = 0.1,
        // score 0.9 -> contextual alarm.
        let verdict = det.observe(bev(1, 1, true));
        assert!(verdict.exceeds_threshold);
        assert_eq!(verdict.alarms.len(), 1);
        assert_eq!(verdict.alarms[0].kind, AlarmKind::Contextual);
        assert_eq!(verdict.alarms[0].len(), 1);
        assert!((verdict.score - 0.9).abs() < 1e-9);
        // Context is reported with the alarm.
        let ctx = &verdict.alarms[0].events[0].cause_values;
        assert_eq!(ctx.len(), 1);
        assert!(!ctx[0].1, "cause (device 0) was off");
    }

    #[test]
    fn normal_events_raise_nothing() {
        let dig = two_device_dig();
        let cfg = DetectorConfig::new(0.5, 1);
        let mut det = KSequenceDetector::new(&dig, SystemState::all_off(2), cfg);
        // Device 0 turns on (P = 0.9, score 0.1), then device 1 follows
        // (P = 0.9, score 0.1).
        let v0 = det.observe(bev(1, 0, true));
        let v1 = det.observe(bev(2, 1, true));
        assert!(!v0.exceeds_threshold && v0.alarms.is_empty());
        assert!(!v1.exceeds_threshold && v1.alarms.is_empty());
    }

    #[test]
    fn collective_chain_tracked_to_kmax() {
        let dig = two_device_dig();
        let cfg = DetectorConfig::new(0.5, 2);
        let mut det = KSequenceDetector::new(&dig, SystemState::all_off(2), cfg);
        // Attacker ghost-activates device 1 (contextual, score 0.9); the
        // following device-0 flip is normal (score 0.1) and rides the
        // malicious context -> collective alarm of length 2.
        let v1 = det.observe(bev(1, 1, true));
        assert!(v1.alarms.is_empty(), "tracking should continue");
        assert_eq!(det.tracking_len(), 1);
        let v2 = det.observe(bev(2, 0, true));
        assert_eq!(v2.alarms.len(), 1);
        let alarm = &v2.alarms[0];
        assert_eq!(alarm.kind, AlarmKind::Collective);
        assert_eq!(alarm.len(), 2);
        assert!(!alarm.ended_by_abrupt);
        assert_eq!(alarm.events[0].event.device.index(), 1);
        assert_eq!(alarm.events[1].event.device.index(), 0);
    }

    #[test]
    fn abrupt_event_ends_tracking_and_is_dropped_by_default() {
        let dig = two_device_dig();
        let cfg = DetectorConfig::new(0.5, 3);
        let mut det = KSequenceDetector::new(&dig, SystemState::all_off(2), cfg);
        // Contextual anomaly opens W.
        det.observe(bev(1, 1, true));
        assert_eq!(det.tracking_len(), 1);
        // Device 1 reporting ON again while device 0 is now... device 0 is
        // off, so P(device1 = on | off) = 0.1 -> score 0.9: abrupt.
        let v = det.observe(bev(2, 1, true));
        assert_eq!(v.alarms.len(), 1);
        assert!(v.alarms[0].ended_by_abrupt);
        assert_eq!(v.alarms[0].len(), 1);
        // Paper semantics: the abrupt event is dropped, W is empty.
        assert_eq!(det.tracking_len(), 0);
    }

    #[test]
    fn restart_on_abrupt_extension_keeps_the_abrupt_event() {
        let dig = two_device_dig();
        let mut cfg = DetectorConfig::new(0.5, 3);
        cfg.restart_on_abrupt = true;
        let mut det = KSequenceDetector::new(&dig, SystemState::all_off(2), cfg);
        det.observe(bev(1, 1, true));
        let v = det.observe(bev(2, 1, true));
        assert_eq!(v.alarms.len(), 1);
        assert_eq!(det.tracking_len(), 1, "abrupt event starts a new chain");
    }

    #[test]
    fn reset_tracking_clears_w() {
        let dig = two_device_dig();
        let cfg = DetectorConfig::new(0.5, 4);
        let mut det = KSequenceDetector::new(&dig, SystemState::all_off(2), cfg);
        det.observe(bev(1, 1, true));
        assert_eq!(det.tracking_len(), 1);
        det.reset_tracking();
        assert_eq!(det.tracking_len(), 0);
    }

    #[test]
    #[should_panic(expected = "k_max")]
    fn zero_kmax_rejected() {
        DetectorConfig::new(0.5, 0);
    }

    #[test]
    fn reset_mid_chain_never_leaks_pre_reset_events() {
        let dig = two_device_dig();
        let cfg = DetectorConfig::new(0.5, 3);
        let mut det = KSequenceDetector::new(&dig, SystemState::all_off(2), cfg);
        // Open a chain: ghost activation (ordinal 0) + a rider (ordinal 1).
        det.observe(bev(1, 1, true));
        det.observe(bev(2, 0, true));
        assert_eq!(det.tracking_len(), 2);
        det.reset_tracking();
        assert_eq!(det.tracking_len(), 0);
        // A fresh chain after the reset: ghost deactivation (ordinal 3)
        // plus two normal riders fills k_max and flushes a collective
        // alarm — it must reference only post-reset ordinals.
        let quiet = det.observe(bev(3, 1, true));
        assert!(quiet.alarms.is_empty());
        det.observe(bev(4, 1, false));
        det.observe(bev(5, 0, false));
        let v = det.observe(bev(6, 1, false));
        assert_eq!(v.alarms.len(), 1);
        let alarm = &v.alarms[0];
        assert_eq!(alarm.kind, AlarmKind::Collective);
        assert!(
            alarm.events.iter().all(|e| e.ordinal >= 3),
            "collective alarm referenced pre-reset events: {:?}",
            alarm.events.iter().map(|e| e.ordinal).collect::<Vec<_>>()
        );
    }

    #[test]
    fn owned_and_borrowed_detectors_share_one_implementation() {
        use std::sync::Arc;
        let dig = Arc::new(two_device_dig());
        let cfg = DetectorConfig::new(0.5, 2);
        let mut borrowed = KSequenceDetector::new(&*dig, SystemState::all_off(2), cfg);
        let mut owned = KSequenceDetector::new(Arc::clone(&dig), SystemState::all_off(2), cfg);
        for event in [bev(1, 1, true), bev(2, 0, true), bev(3, 1, false)] {
            assert_eq!(borrowed.observe(event), owned.observe(event));
        }
    }
}
