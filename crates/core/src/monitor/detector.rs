//! The k-sequence anomaly-detection procedure (Algorithm 2).
//!
//! For each incoming event the detector computes the Eq. 1 anomaly score
//! and interprets it against the tracked anomaly list `W`:
//!
//! * `W` empty, score ≥ c — the event is a **contextual anomaly**; it
//!   opens `W` (and is reported immediately when `k_max = 1`).
//! * `W` non-empty, score < c — the event follows an interaction execution
//!   under the malicious context: it joins the **collective anomaly**.
//! * `W` non-empty, score ≥ c — an *abrupt event*: tracking ends and the
//!   collected list is reported.
//! * `|W| = k_max` — the chain reached the maximum tracked length and is
//!   reported.
//!
//! ### Fidelity note
//!
//! The paper's pseudocode checks `0 < |W| < k_max ∧ score ≥ c` *after*
//! appending, which — read literally — would flush a fresh contextual
//! anomaly before any propagation could be tracked, and silently drops the
//! abrupt event itself. We implement the evident intent (the abrupt-event
//! rule only fires for events that did **not** join `W`), keep the paper's
//! drop-the-abrupt-event semantics by default, and offer
//! [`DetectorConfig::restart_on_abrupt`] as a documented extension that
//! instead treats the abrupt event as a new contextual anomaly.

use std::ops::Deref;
use std::time::Instant;

use iot_model::{BinaryEvent, DeviceId, SystemState};
use iot_telemetry::{Buckets, Counter, Gauge, Histogram, TelemetryHandle};
use serde::{Deserialize, Serialize};

use super::PhantomStateMachine;
use crate::graph::{Dig, LaggedVar, UnseenContext};
use crate::ingest::StaleSet;

/// Configuration of the k-sequence detector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// The contextual-anomaly score threshold `c`.
    pub threshold: f64,
    /// Maximum tracked anomaly length `k_max ≥ 1` (`1` = contextual
    /// detection only).
    pub k_max: usize,
    /// Scoring policy for cause contexts unseen in training.
    pub unseen: UnseenContext,
    /// Extension: restart tracking at an abrupt event instead of dropping
    /// it (see the module docs). `false` reproduces the paper.
    pub restart_on_abrupt: bool,
}

impl DetectorConfig {
    /// Creates a configuration with the given threshold and `k_max`,
    /// paper-faithful otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `k_max == 0` or the threshold is not in `[0, 1]`.
    pub fn new(threshold: f64, k_max: usize) -> Self {
        assert!(k_max >= 1, "k_max must be at least 1");
        assert!(
            (0.0..=1.0).contains(&threshold),
            "threshold must be in [0, 1]"
        );
        DetectorConfig {
            threshold,
            k_max,
            unseen: UnseenContext::default(),
            restart_on_abrupt: false,
        }
    }
}

/// One event in a reported anomaly, with the context that explains the
/// verdict ("additional information for later anomaly interpretation",
/// Algorithm 2 line 7).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnomalousEvent {
    /// The 0-based position of the event in the observed stream (the
    /// evaluation compares alarm positions against injected positions,
    /// Section VI-C).
    pub ordinal: u64,
    /// The offending event.
    pub event: BinaryEvent,
    /// The values of the device's causes at detection time.
    pub cause_values: Vec<(LaggedVar, bool)>,
    /// The Eq. 1 anomaly score.
    pub score: f64,
}

/// What kind of anomaly an alarm reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AlarmKind {
    /// A single event violating an interaction execution (Definition 2).
    Contextual,
    /// A contextual anomaly plus the event chain that followed the
    /// unexpected interaction execution (Definition 3).
    Collective,
}

/// An alarm reported to the user for amendment (Algorithm 2 line 10).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Alarm {
    /// Contextual or collective.
    pub kind: AlarmKind,
    /// The anomalous events, oldest first; the first entry is always the
    /// triggering contextual anomaly.
    pub events: Vec<AnomalousEvent>,
    /// Whether tracking was cut short by an abrupt high-score event.
    pub ended_by_abrupt: bool,
}

impl Alarm {
    /// Length of the reported chain.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the alarm is empty (never produced by the detector).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// The detector's response to one observed event.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    /// The event's anomaly score.
    pub score: f64,
    /// Whether the score met the contextual-anomaly threshold.
    pub exceeds_threshold: bool,
    /// Alarms flushed by this event (usually zero or one; the
    /// restart-on-abrupt extension with `k_max = 1` can produce two).
    pub alarms: Vec<Alarm>,
    /// How much of the CPT context behind the score was *live* when the
    /// event was scored: the fraction of the device's causes whose parent
    /// device was not flagged stale by the ingestion guard's liveness
    /// clock. `1.0` (the value outside degraded mode, and for devices with
    /// no causes) means every conditioning parent was recently heard from;
    /// lower values mean the score conditions on state that may be frozen
    /// by a silent sensor, so the verdict deserves less trust.
    pub confidence: f64,
}

/// Always-on session counts kept by the detector — cheap plain integers,
/// available even with telemetry disabled (they feed
/// [`iot_telemetry::MonitorReport`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DetectorStats {
    /// Events scored.
    pub events: u64,
    /// Contextual alarms raised.
    pub contextual_alarms: u64,
    /// Collective alarms raised.
    pub collective_alarms: u64,
    /// Longest tracked anomaly chain observed.
    pub max_tracking_len: u64,
}

/// The detector's optional telemetry instruments, resolved once from a
/// [`TelemetryHandle`] so the per-event hot path never touches the
/// registry. Disabled instruments cost one branch per update.
#[derive(Debug, Clone, Default)]
struct DetectorInstruments {
    enabled: bool,
    events: Counter,
    latency_us: Histogram,
    scores: Histogram,
    contextual: Counter,
    collective: Counter,
    tracking_len: Gauge,
}

impl DetectorInstruments {
    fn from_handle(telemetry: &TelemetryHandle) -> Self {
        DetectorInstruments {
            enabled: telemetry.enabled(),
            events: telemetry.counter("monitor.events"),
            latency_us: telemetry.histogram(
                "monitor.observe_latency_us",
                Buckets::exponential(1.0, 2.0, 20),
            ),
            scores: telemetry.histogram("monitor.score", Buckets::linear(0.0, 1.0, 20)),
            contextual: telemetry.counter("monitor.alarms.contextual"),
            collective: telemetry.counter("monitor.alarms.collective"),
            tracking_len: telemetry.gauge("monitor.tracking_len"),
        }
    }
}

/// Densify a CPT only while its table stays small (`2^16` contexts ≈ 1 MB
/// of scores); larger tables — far beyond real interaction degrees — fall
/// back to the map walk through [`Cpt::prob`].
const DENSE_MAX_CAUSES: usize = 16;

/// Precomputed dense lookup tables for the scoring hot path, built once at
/// detector construction (the DIG and the unseen-context policy are both
/// immutable for the detector's lifetime).
///
/// Replaces the per-event CPT walk with two flat-array reads: the device's
/// cause list (flattened, `cause_offset`-indexed) and its full score table
/// `scores[score_offset[d] + 2*code + outcome] = 1 − P(outcome | code)` —
/// the exact float the [`Cpt::prob`] path would produce, precomputed, so
/// verdicts stay bit-identical.
#[derive(Debug, Clone)]
struct DenseScores {
    /// Device `d`'s causes are `causes[cause_offset[d]..cause_offset[d+1]]`.
    cause_offset: Vec<u32>,
    causes: Vec<LaggedVar>,
    /// `causes` pre-resolved for the scoring loop: each entry packs the
    /// cause's device index (high 32 bits) and `lag − 1` (low 32 bits),
    /// range-checked once here so the per-event queries go through the
    /// assert-free [`PhantomStateMachine::cause_value_fast`].
    fast_causes: Vec<u64>,
    /// Offset of device `d`'s score table in `scores`, or `usize::MAX` for
    /// devices whose CPT exceeds [`DENSE_MAX_CAUSES`] causes.
    score_offset: Vec<usize>,
    scores: Vec<f64>,
}

impl DenseScores {
    fn build(dig: &Dig, unseen: UnseenContext) -> Self {
        let n = dig.num_devices();
        let mut cause_offset = Vec::with_capacity(n + 1);
        let mut causes = Vec::new();
        let mut score_offset = Vec::with_capacity(n);
        let mut scores = Vec::new();
        let mut fast_causes = Vec::new();
        for d in 0..n {
            let cpt = dig.cpt(DeviceId::from_index(d));
            cause_offset.push(causes.len() as u32);
            causes.extend_from_slice(cpt.causes());
            for cause in cpt.causes() {
                assert!(
                    cause.lag >= 1 && cause.lag <= dig.tau(),
                    "mined cause lag {} outside 1..=τ",
                    cause.lag
                );
                fast_causes.push(((cause.device.index() as u64) << 32) | (cause.lag - 1) as u64);
            }
            if cpt.causes().len() <= DENSE_MAX_CAUSES {
                score_offset.push(scores.len());
                for code in 0..cpt.num_contexts() {
                    scores.push(1.0 - cpt.prob(code, false, unseen));
                    scores.push(1.0 - cpt.prob(code, true, unseen));
                }
            } else {
                score_offset.push(usize::MAX);
            }
        }
        cause_offset.push(causes.len() as u32);
        DenseScores {
            cause_offset,
            causes,
            fast_causes,
            score_offset,
            scores,
        }
    }

    /// The (ordered) causes of device `d` — identical contents to
    /// `dig.cpt(d).causes()`.
    #[inline]
    fn causes_of(&self, d: usize) -> &[LaggedVar] {
        &self.causes[self.cause_offset[d] as usize..self.cause_offset[d + 1] as usize]
    }
}

/// The k-sequence anomaly detector (Algorithm 2).
///
/// Generic over *how the mined DIG is held*: `D` is any handle that
/// dereferences to a [`Dig`]. The two instantiations used by the pipeline
/// are `&Dig` (the classic borrowing detector behind
/// [`crate::pipeline::Monitor`]) and `std::sync::Arc<Dig>` (the owned,
/// `Send + 'static` detector behind [`crate::pipeline::OwnedMonitor`]).
/// Both run the exact same code, so verdicts are bit-identical by
/// construction.
#[derive(Debug, Clone)]
pub struct KSequenceDetector<D: Deref<Target = Dig>> {
    dig: D,
    config: DetectorConfig,
    dense: DenseScores,
    pm: PhantomStateMachine,
    w: Vec<AnomalousEvent>,
    next_ordinal: u64,
    stats: DetectorStats,
    instruments: DetectorInstruments,
}

impl<D: Deref<Target = Dig>> KSequenceDetector<D> {
    /// Creates a detector over a mined DIG, starting from `initial`.
    pub fn new(dig: D, initial: SystemState, config: DetectorConfig) -> Self {
        assert!(config.k_max >= 1, "k_max must be at least 1");
        let tau = dig.tau();
        let dense = DenseScores::build(&dig, config.unseen);
        KSequenceDetector {
            dig,
            config,
            dense,
            pm: PhantomStateMachine::new(initial, tau),
            w: Vec::new(),
            next_ordinal: 0,
            stats: DetectorStats::default(),
            instruments: DetectorInstruments::default(),
        }
    }

    /// Attaches telemetry instruments (latency/score histograms, alarm
    /// counters, tracking-length gauge) resolved from `telemetry`. A
    /// disabled handle leaves the hot path at one branch per update.
    pub fn set_telemetry(&mut self, telemetry: &TelemetryHandle) {
        self.instruments = DetectorInstruments::from_handle(telemetry);
    }

    /// The always-on session counts.
    pub fn stats(&self) -> &DetectorStats {
        &self.stats
    }

    /// The configuration in use.
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    /// The phantom state machine's current system state.
    pub fn current_state(&self) -> &SystemState {
        self.pm.current()
    }

    /// Number of events currently tracked in `W`.
    pub fn tracking_len(&self) -> usize {
        self.w.len()
    }

    /// Processes one runtime event and returns the verdict.
    pub fn observe(&mut self, event: BinaryEvent) -> Verdict {
        self.observe_inner(event, 1.0)
    }

    /// [`observe`](Self::observe) in **degraded mode**: the event is
    /// scored and tracked exactly as usual (state transitions, alarms, and
    /// scores are bit-identical), but the verdict's
    /// [`confidence`](Verdict::confidence) is the fraction of the event
    /// device's CPT causes whose parent device is not in `stale`. With an
    /// empty stale set this is exactly [`observe`](Self::observe).
    pub fn observe_degraded(&mut self, event: BinaryEvent, stale: &StaleSet) -> Verdict {
        let confidence = self.cause_confidence(event.device, stale);
        self.observe_inner(event, confidence)
    }

    /// Processes a slice of events as one batch, appending one verdict per
    /// event to `out` in stream order; with `stale` set every event is
    /// scored in degraded mode against that snapshot.
    ///
    /// Verdicts (and the always-on [`DetectorStats`]) are **bit-identical**
    /// to observing the same events sequentially — the batch only amortises
    /// the optional telemetry instruments, which are flushed once per batch
    /// (counter deltas, score samples, one final tracking-length mark, and
    /// a single whole-batch latency sample instead of per-event ones).
    ///
    /// Verdicts are appended as each event completes, so if scoring panics
    /// mid-batch, `out` holds exactly the verdicts of the events *before*
    /// the panicking one — the guarantee the serving layer's
    /// quarantine-at-the-exact-event machinery relies on.
    pub fn observe_batch_into(
        &mut self,
        events: &[BinaryEvent],
        stale: Option<&StaleSet>,
        out: &mut Vec<Verdict>,
    ) {
        let started = if self.instruments.enabled {
            Some(Instant::now())
        } else {
            None
        };
        let stats_before = self.stats;
        let base = out.len();
        out.reserve(events.len());
        for &event in events {
            let confidence = match stale {
                Some(stale) => self.cause_confidence(event.device, stale),
                None => 1.0,
            };
            let verdict = self.step_event(event, confidence);
            out.push(verdict);
        }
        if let Some(start) = started {
            self.instruments.events.add((out.len() - base) as u64);
            for verdict in &out[base..] {
                self.instruments.scores.observe(verdict.score);
            }
            self.instruments.tracking_len.set(self.w.len() as u64);
            self.instruments
                .contextual
                .add(self.stats.contextual_alarms - stats_before.contextual_alarms);
            self.instruments
                .collective
                .add(self.stats.collective_alarms - stats_before.collective_alarms);
            self.instruments
                .latency_us
                .observe(start.elapsed().as_secs_f64() * 1e6);
        }
    }

    /// The fraction of `device`'s CPT causes whose parent device is live
    /// (not in `stale`); `1.0` for devices with no causes.
    fn cause_confidence(&self, device: DeviceId, stale: &StaleSet) -> f64 {
        let causes = self.dense.causes_of(device.index());
        if causes.is_empty() || stale.count() == 0 {
            return 1.0;
        }
        let live = causes
            .iter()
            .filter(|cause| !stale.is_stale(cause.device))
            .count();
        live as f64 / causes.len() as f64
    }

    fn observe_inner(&mut self, event: BinaryEvent, confidence: f64) -> Verdict {
        let started = if self.instruments.enabled {
            Some(Instant::now())
        } else {
            None
        };
        let verdict = self.step_event(event, confidence);
        if let Some(start) = started {
            self.instruments.events.inc();
            self.instruments.scores.observe(verdict.score);
            self.instruments.tracking_len.set(self.w.len() as u64);
            for alarm in &verdict.alarms {
                match alarm.kind {
                    AlarmKind::Contextual => self.instruments.contextual.inc(),
                    AlarmKind::Collective => self.instruments.collective.inc(),
                }
            }
            self.instruments
                .latency_us
                .observe(start.elapsed().as_secs_f64() * 1e6);
        }
        verdict
    }

    /// Line 4-5 of Algorithm 2: resolve the event device's cause values
    /// against the phantom state and look up the anomaly score, all
    /// *before* the state machine absorbs the event. Returns the context
    /// code alongside the score (the map-walk fallback for ultra-wide CPTs
    /// needs it). The context build is branchless — cause values shift
    /// straight into the code word — because on anomalous streams these
    /// bits are close to random and a compare-and-jump per cause would
    /// mispredict constantly.
    #[inline]
    fn score_of(&self, event: &BinaryEvent) -> (usize, f64) {
        let d = event.device.index();
        let range = self.dense.cause_offset[d] as usize..self.dense.cause_offset[d + 1] as usize;
        let mut code = 0usize;
        for (bit, &packed) in self.dense.fast_causes[range].iter().enumerate() {
            let value = self
                .pm
                .cause_value_fast((packed >> 32) as usize, packed & u32::MAX as u64);
            code |= (value as usize) << bit;
        }
        let off = self.dense.score_offset[d];
        let score = if off != usize::MAX {
            self.dense.scores[off + 2 * code + event.value as usize]
        } else {
            1.0 - self
                .dig
                .cpt(event.device)
                .prob(code, event.value, self.config.unseen)
        };
        (code, score)
    }

    /// One full Algorithm 2 step — scoring, phantom-state update, tracking,
    /// and the always-on stats — without the optional telemetry
    /// instruments (the sequential and batched entry points layer those
    /// differently on top).
    fn step_event(&mut self, event: BinaryEvent, confidence: f64) -> Verdict {
        let (_code, score) = self.score_of(&event);

        let ordinal = self.next_ordinal;
        self.next_ordinal += 1;
        let anomalous = score >= self.config.threshold;
        // Only events that can join W need their cause context materialised
        // (for "anomaly interpretation", Algorithm 2 line 7). The common
        // case — a normal event on a quiet stream — allocates nothing.
        let record = if anomalous || !self.w.is_empty() {
            let cause_values: Vec<(LaggedVar, bool)> = self
                .dense
                .causes_of(event.device.index())
                .iter()
                .map(|&c| (c, self.pm.cause_value_for_next(c)))
                .collect();
            Some(AnomalousEvent {
                ordinal,
                event,
                cause_values,
                score,
            })
        } else {
            None
        };
        self.pm.apply(&event);

        let mut alarms = Vec::new();
        if self.w.is_empty() {
            if anomalous {
                // Line 6-8: a fresh contextual anomaly opens W.
                self.w
                    .push(record.expect("anomalous events carry a record"));
                if self.w.len() == self.config.k_max {
                    alarms.push(self.flush(false));
                }
            }
        } else if !anomalous {
            // Line 6-8: a low-score event continues the collective anomaly.
            self.w.push(record.expect("tracked events carry a record"));
            if self.w.len() == self.config.k_max {
                alarms.push(self.flush(false));
            }
        } else {
            // Line 9-12: an abrupt event ends tracking.
            alarms.push(self.flush(true));
            if self.config.restart_on_abrupt {
                self.w
                    .push(record.expect("anomalous events carry a record"));
                if self.w.len() == self.config.k_max {
                    alarms.push(self.flush(false));
                }
            }
        }
        self.stats.events += 1;
        self.stats.max_tracking_len = self.stats.max_tracking_len.max(self.w.len() as u64);
        for alarm in &alarms {
            match alarm.kind {
                AlarmKind::Contextual => self.stats.contextual_alarms += 1,
                AlarmKind::Collective => self.stats.collective_alarms += 1,
            }
        }
        Verdict {
            score,
            exceeds_threshold: anomalous,
            alarms,
            confidence,
        }
    }

    /// Snapshot of the score histogram (empty unless telemetry is
    /// attached and enabled).
    pub(crate) fn score_snapshot(&self) -> iot_telemetry::HistogramSnapshot {
        self.instruments.scores.snapshot()
    }

    /// Snapshot of the per-event latency histogram, microseconds (empty
    /// unless telemetry is attached and enabled).
    pub(crate) fn latency_snapshot(&self) -> iot_telemetry::HistogramSnapshot {
        self.instruments.latency_us.snapshot()
    }

    /// Flushes `W` into an alarm.
    fn flush(&mut self, ended_by_abrupt: bool) -> Alarm {
        let events = std::mem::take(&mut self.w);
        let kind = if events.len() <= 1 {
            AlarmKind::Contextual
        } else {
            AlarmKind::Collective
        };
        Alarm {
            kind,
            events,
            ended_by_abrupt,
        }
    }

    /// [`observe_batch_into`](Self::observe_batch_into) minus the verdicts:
    /// every *observable* side effect is preserved — phantom-state
    /// transitions, tracking dynamics, the always-on [`DetectorStats`],
    /// and the once-per-batch telemetry flush all stay bit-identical to
    /// the sequential path — but no [`Verdict`] or [`Alarm`] payload is
    /// ever materialised, which removes every per-event heap allocation.
    ///
    /// This is the serving hot path for configurations where nobody can
    /// read the verdicts anyway (no verdict recording, no flight recorder
    /// attached): the hub's burst loop feeds whole queue drains through
    /// here and reports purely via counters.
    ///
    /// `scored` is incremented once per *completed* event, so if scoring
    /// panics mid-batch it holds the exact index of the panicking event —
    /// the same boundary guarantee `observe_batch_into` provides through
    /// `out.len()`, which quarantine-at-the-exact-event relies on.
    ///
    /// Internal subtlety: tracked events accumulated in this mode carry
    /// empty `cause_values` (interpretation context is only needed when an
    /// alarm can be shown to someone). Mixed-mode use is still coherent —
    /// `W` is the same real buffer — but alarms flushed from such records
    /// explain less; the serving layer only enters this path when those
    /// alarms are unobservable by construction.
    pub fn observe_batch_stats_only(&mut self, events: &[BinaryEvent], scored: &mut usize) {
        let started = if self.instruments.enabled {
            Some(Instant::now())
        } else {
            None
        };
        let stats_before = self.stats;
        if self.instruments.enabled {
            // The score histogram needs every sample, so run the full
            // step and discard each verdict as it completes. Alarm/record
            // allocations survive here; instrumented hubs trade that for
            // observability.
            for &event in events {
                let verdict = self.step_event(event, 1.0);
                self.instruments.scores.observe(verdict.score);
                *scored += 1;
            }
        } else {
            for &event in events {
                self.step_event_stats_only(event);
                *scored += 1;
            }
        }
        if let Some(start) = started {
            self.instruments.events.add(events.len() as u64);
            self.instruments.tracking_len.set(self.w.len() as u64);
            self.instruments
                .contextual
                .add(self.stats.contextual_alarms - stats_before.contextual_alarms);
            self.instruments
                .collective
                .add(self.stats.collective_alarms - stats_before.collective_alarms);
            self.instruments
                .latency_us
                .observe(start.elapsed().as_secs_f64() * 1e6);
        }
    }

    /// [`observe_batch_stats_only`](Self::observe_batch_stats_only) that
    /// additionally surfaces each event's `(event, score)` pair to
    /// `on_score` as it completes — the hook the drift detector
    /// ([`crate::monitor::DriftDetector`]) rides. Every observable side
    /// effect (phantom state, tracking, [`DetectorStats`], telemetry
    /// flush) stays bit-identical to the stats-only path; the score is a
    /// value `step_event_stats_only`
    /// already computes, so the extra cost is one indirect call per
    /// event and nothing else.
    ///
    /// `scored` is incremented once per *completed* event (after
    /// `on_score` returns), preserving the exact panic-boundary
    /// guarantee of the other batched entry points.
    pub fn observe_batch_scores_only(
        &mut self,
        events: &[BinaryEvent],
        scored: &mut usize,
        on_score: &mut dyn FnMut(BinaryEvent, f64),
    ) {
        let started = if self.instruments.enabled {
            Some(Instant::now())
        } else {
            None
        };
        let stats_before = self.stats;
        if self.instruments.enabled {
            for &event in events {
                let verdict = self.step_event(event, 1.0);
                self.instruments.scores.observe(verdict.score);
                on_score(event, verdict.score);
                *scored += 1;
            }
        } else {
            for &event in events {
                let score = self.step_event_stats_only(event);
                on_score(event, score);
                *scored += 1;
            }
        }
        if let Some(start) = started {
            self.instruments.events.add(events.len() as u64);
            self.instruments.tracking_len.set(self.w.len() as u64);
            self.instruments
                .contextual
                .add(self.stats.contextual_alarms - stats_before.contextual_alarms);
            self.instruments
                .collective
                .add(self.stats.collective_alarms - stats_before.collective_alarms);
            self.instruments
                .latency_us
                .observe(start.elapsed().as_secs_f64() * 1e6);
        }
    }

    /// [`step_event`](Self::step_event) with verdict and interpretation
    /// materialisation stripped out. The control flow mirrors `step_event`
    /// line for line (same W pushes, same flush points, same stats
    /// arithmetic) so `DetectorStats` and all future verdicts stay
    /// bit-identical; the only divergence is *what* is allocated: tracked
    /// records carry empty `cause_values`, and flushes count alarms
    /// instead of assembling them ([`flush_stats_only`]
    /// (Self::flush_stats_only) clears `W` in place, so after the first
    /// chain its capacity is reused forever — zero steady-state
    /// allocations).
    #[inline]
    fn step_event_stats_only(&mut self, event: BinaryEvent) -> f64 {
        let (_code, score) = self.score_of(&event);
        let ordinal = self.next_ordinal;
        self.next_ordinal += 1;
        let anomalous = score >= self.config.threshold;
        self.pm.apply(&event);

        let record = || AnomalousEvent {
            ordinal,
            event,
            cause_values: Vec::new(),
            score,
        };
        if self.w.is_empty() {
            if anomalous {
                self.w.push(record());
                if self.w.len() == self.config.k_max {
                    self.flush_stats_only();
                }
            }
        } else if !anomalous {
            self.w.push(record());
            if self.w.len() == self.config.k_max {
                self.flush_stats_only();
            }
        } else {
            self.flush_stats_only();
            if self.config.restart_on_abrupt {
                self.w.push(record());
                if self.w.len() == self.config.k_max {
                    self.flush_stats_only();
                }
            }
        }
        self.stats.events += 1;
        self.stats.max_tracking_len = self.stats.max_tracking_len.max(self.w.len() as u64);
        score
    }

    /// [`flush`](Self::flush) without the alarm payload: classifies `W`
    /// exactly like `flush`, bumps the matching stats counter directly
    /// (the caller has no alarm list to count from), and clears `W` *in
    /// place* — keeping its capacity — instead of `mem::take`-ing the
    /// buffer into an `Alarm`.
    #[inline]
    fn flush_stats_only(&mut self) {
        if self.w.len() <= 1 {
            self.stats.contextual_alarms += 1;
        } else {
            self.stats.collective_alarms += 1;
        }
        self.w.clear();
    }

    /// Crate-internal view of the runtime-mutable state a live snapshot
    /// must persist: the phantom state machine, the tracking window `W`,
    /// and the next stream ordinal (the always-on stats come from
    /// [`Self::stats`]). Everything else in the detector — DIG handle,
    /// dense score tables, config, instruments — is rebuilt from the
    /// fitted model on restore.
    pub(crate) fn runtime_parts(&self) -> (&PhantomStateMachine, &[AnomalousEvent], u64) {
        (&self.pm, &self.w, self.next_ordinal)
    }

    /// Crate-internal inverse of [`Self::runtime_parts`]: overwrites the
    /// runtime-mutable state of a freshly built detector so subsequent
    /// verdicts are bit-identical to the detector the parts were exported
    /// from.
    ///
    /// # Panics
    ///
    /// Panics if the phantom state machine's shape (τ, device count) does
    /// not match the detector's DIG.
    pub(crate) fn restore_runtime(
        &mut self,
        pm: PhantomStateMachine,
        w: Vec<AnomalousEvent>,
        next_ordinal: u64,
        stats: DetectorStats,
    ) {
        assert_eq!(pm.tau(), self.dig.tau(), "snapshot τ mismatch");
        assert_eq!(
            pm.current().len(),
            self.dig.num_devices(),
            "snapshot device-count mismatch"
        );
        self.pm = pm;
        self.w = w;
        self.next_ordinal = next_ordinal;
        self.stats = stats;
    }

    /// Clears any in-progress tracking (the phantom state is kept).
    ///
    /// The in-flight collective-anomaly chain `W` is discarded without
    /// being reported, so no later verdict can reference pre-reset events;
    /// the tracking-length gauge is zeroed so telemetry cannot show a
    /// stale chain either.
    pub fn reset_tracking(&mut self) {
        self.w.clear();
        if self.instruments.enabled {
            self.instruments.tracking_len.set(0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Cpt;
    use iot_model::{DeviceId, Timestamp};

    fn bev(t: u64, dev: usize, on: bool) -> BinaryEvent {
        BinaryEvent::new(Timestamp::from_secs(t), DeviceId::from_index(dev), on)
    }

    /// Two devices. Device 1's CPT: strongly follows device 0's lag-1
    /// state. Device 0's CPT: flips constantly (any report is normal-ish
    /// when it alternates).
    fn two_device_dig() -> Dig {
        let c0 = LaggedVar::new(DeviceId::from_index(0), 1);
        // Device 0: autocorrelation — flips are normal, repeats are not.
        let mut cpt0 = Cpt::new(vec![c0], 0.0);
        for i in 0..100 {
            cpt0.record(0, i < 90); // was off -> mostly turns on
            cpt0.record(1, i >= 90); // was on -> mostly turns off
        }
        // Device 1: copies device 0.
        let mut cpt1 = Cpt::new(vec![c0], 0.0);
        for i in 0..100 {
            cpt1.record(0, i < 10); // cause off -> mostly off
            cpt1.record(1, i >= 10); // cause on -> mostly on
        }
        Dig::new(1, vec![vec![c0], vec![c0]], vec![cpt0, cpt1])
    }

    #[test]
    fn contextual_anomaly_with_kmax_one() {
        let dig = two_device_dig();
        let cfg = DetectorConfig::new(0.5, 1);
        let mut det = KSequenceDetector::new(&dig, SystemState::all_off(2), cfg);
        // Device 1 turning ON while device 0 is OFF: P(on | off) = 0.1,
        // score 0.9 -> contextual alarm.
        let verdict = det.observe(bev(1, 1, true));
        assert!(verdict.exceeds_threshold);
        assert_eq!(verdict.alarms.len(), 1);
        assert_eq!(verdict.alarms[0].kind, AlarmKind::Contextual);
        assert_eq!(verdict.alarms[0].len(), 1);
        assert!((verdict.score - 0.9).abs() < 1e-9);
        // Context is reported with the alarm.
        let ctx = &verdict.alarms[0].events[0].cause_values;
        assert_eq!(ctx.len(), 1);
        assert!(!ctx[0].1, "cause (device 0) was off");
    }

    #[test]
    fn normal_events_raise_nothing() {
        let dig = two_device_dig();
        let cfg = DetectorConfig::new(0.5, 1);
        let mut det = KSequenceDetector::new(&dig, SystemState::all_off(2), cfg);
        // Device 0 turns on (P = 0.9, score 0.1), then device 1 follows
        // (P = 0.9, score 0.1).
        let v0 = det.observe(bev(1, 0, true));
        let v1 = det.observe(bev(2, 1, true));
        assert!(!v0.exceeds_threshold && v0.alarms.is_empty());
        assert!(!v1.exceeds_threshold && v1.alarms.is_empty());
    }

    #[test]
    fn collective_chain_tracked_to_kmax() {
        let dig = two_device_dig();
        let cfg = DetectorConfig::new(0.5, 2);
        let mut det = KSequenceDetector::new(&dig, SystemState::all_off(2), cfg);
        // Attacker ghost-activates device 1 (contextual, score 0.9); the
        // following device-0 flip is normal (score 0.1) and rides the
        // malicious context -> collective alarm of length 2.
        let v1 = det.observe(bev(1, 1, true));
        assert!(v1.alarms.is_empty(), "tracking should continue");
        assert_eq!(det.tracking_len(), 1);
        let v2 = det.observe(bev(2, 0, true));
        assert_eq!(v2.alarms.len(), 1);
        let alarm = &v2.alarms[0];
        assert_eq!(alarm.kind, AlarmKind::Collective);
        assert_eq!(alarm.len(), 2);
        assert!(!alarm.ended_by_abrupt);
        assert_eq!(alarm.events[0].event.device.index(), 1);
        assert_eq!(alarm.events[1].event.device.index(), 0);
    }

    #[test]
    fn abrupt_event_ends_tracking_and_is_dropped_by_default() {
        let dig = two_device_dig();
        let cfg = DetectorConfig::new(0.5, 3);
        let mut det = KSequenceDetector::new(&dig, SystemState::all_off(2), cfg);
        // Contextual anomaly opens W.
        det.observe(bev(1, 1, true));
        assert_eq!(det.tracking_len(), 1);
        // Device 1 reporting ON again while device 0 is now... device 0 is
        // off, so P(device1 = on | off) = 0.1 -> score 0.9: abrupt.
        let v = det.observe(bev(2, 1, true));
        assert_eq!(v.alarms.len(), 1);
        assert!(v.alarms[0].ended_by_abrupt);
        assert_eq!(v.alarms[0].len(), 1);
        // Paper semantics: the abrupt event is dropped, W is empty.
        assert_eq!(det.tracking_len(), 0);
    }

    #[test]
    fn restart_on_abrupt_extension_keeps_the_abrupt_event() {
        let dig = two_device_dig();
        let mut cfg = DetectorConfig::new(0.5, 3);
        cfg.restart_on_abrupt = true;
        let mut det = KSequenceDetector::new(&dig, SystemState::all_off(2), cfg);
        det.observe(bev(1, 1, true));
        let v = det.observe(bev(2, 1, true));
        assert_eq!(v.alarms.len(), 1);
        assert_eq!(det.tracking_len(), 1, "abrupt event starts a new chain");
    }

    #[test]
    fn reset_tracking_clears_w() {
        let dig = two_device_dig();
        let cfg = DetectorConfig::new(0.5, 4);
        let mut det = KSequenceDetector::new(&dig, SystemState::all_off(2), cfg);
        det.observe(bev(1, 1, true));
        assert_eq!(det.tracking_len(), 1);
        det.reset_tracking();
        assert_eq!(det.tracking_len(), 0);
    }

    #[test]
    #[should_panic(expected = "k_max")]
    fn zero_kmax_rejected() {
        DetectorConfig::new(0.5, 0);
    }

    #[test]
    fn reset_mid_chain_never_leaks_pre_reset_events() {
        let dig = two_device_dig();
        let cfg = DetectorConfig::new(0.5, 3);
        let mut det = KSequenceDetector::new(&dig, SystemState::all_off(2), cfg);
        // Open a chain: ghost activation (ordinal 0) + a rider (ordinal 1).
        det.observe(bev(1, 1, true));
        det.observe(bev(2, 0, true));
        assert_eq!(det.tracking_len(), 2);
        det.reset_tracking();
        assert_eq!(det.tracking_len(), 0);
        // A fresh chain after the reset: ghost deactivation (ordinal 3)
        // plus two normal riders fills k_max and flushes a collective
        // alarm — it must reference only post-reset ordinals.
        let quiet = det.observe(bev(3, 1, true));
        assert!(quiet.alarms.is_empty());
        det.observe(bev(4, 1, false));
        det.observe(bev(5, 0, false));
        let v = det.observe(bev(6, 1, false));
        assert_eq!(v.alarms.len(), 1);
        let alarm = &v.alarms[0];
        assert_eq!(alarm.kind, AlarmKind::Collective);
        assert!(
            alarm.events.iter().all(|e| e.ordinal >= 3),
            "collective alarm referenced pre-reset events: {:?}",
            alarm.events.iter().map(|e| e.ordinal).collect::<Vec<_>>()
        );
    }

    #[test]
    fn owned_and_borrowed_detectors_share_one_implementation() {
        use std::sync::Arc;
        let dig = Arc::new(two_device_dig());
        let cfg = DetectorConfig::new(0.5, 2);
        let mut borrowed = KSequenceDetector::new(&*dig, SystemState::all_off(2), cfg);
        let mut owned = KSequenceDetector::new(Arc::clone(&dig), SystemState::all_off(2), cfg);
        for event in [bev(1, 1, true), bev(2, 0, true), bev(3, 1, false)] {
            assert_eq!(borrowed.observe(event), owned.observe(event));
        }
    }
}
