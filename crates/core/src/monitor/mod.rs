//! The Event Monitor (Section V-C).
//!
//! Validates runtime device events against the mined DIG:
//!
//! * [`PhantomStateMachine`] — tracks the latest graph snapshot by sliding
//!   a window of the most recent `τ + 1` system states,
//! * [`compute_threshold`] — the score-threshold calculator: the q-th
//!   percentile of the training events' anomaly scores,
//! * [`KSequenceDetector`] — Algorithm 2: contextual-anomaly detection and
//!   collective-anomaly tracking up to length `k_max`.
//!
//! The anomaly score of an event `e^t : {S_i^t = s}` is Eq. 1:
//! `f = 1 − P(S_i^t = s | Ca(S_i^t) = ca)`.

mod adaptive;
mod detector;
mod drift;
mod phantom;
mod threshold;

pub use adaptive::{AdaptiveConfig, AdaptiveMonitor, AdaptiveVerdict};
pub use detector::{
    Alarm, AlarmKind, AnomalousEvent, DetectorConfig, DetectorStats, KSequenceDetector, Verdict,
};
pub use drift::{DriftConfig, DriftDetector, DriftReport, DriftSeverity, DriftSignal};
pub use phantom::PhantomStateMachine;
pub use threshold::{compute_threshold, training_scores};

use iot_model::BinaryEvent;

use crate::graph::{Dig, UnseenContext};

/// Computes the Eq. 1 anomaly score of `event` against the snapshot
/// currently tracked by `pm` (i.e. *before* the event is applied).
pub fn score_event(
    dig: &Dig,
    pm: &PhantomStateMachine,
    event: &BinaryEvent,
    unseen: UnseenContext,
) -> f64 {
    let cpt = dig.cpt(event.device);
    let code = cpt.context_code(|cause| pm.cause_value_for_next(cause));
    1.0 - cpt.prob(code, event.value, unseen)
}
