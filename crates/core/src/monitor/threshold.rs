//! The score-threshold calculator (Section V-C).
//!
//! Ranks the anomaly scores of all logged (training) events and picks the
//! q-th percentile as the contextual-anomaly threshold `c`. The parameter
//! `q` is "the confidence level about the logged events' normality"; the
//! paper uses `q = 99` under the semi-supervised assumption that the log is
//! (nearly) anomaly-free.

use iot_model::{BinaryEvent, SystemState};
use iot_stats::percentile::percentile;

use super::{score_event, PhantomStateMachine};
use crate::graph::{Dig, UnseenContext};

/// Replays the training events through a fresh phantom state machine and
/// returns each event's anomaly score, in order.
pub fn training_scores(
    dig: &Dig,
    events: &[BinaryEvent],
    initial: &SystemState,
    unseen: UnseenContext,
) -> Vec<f64> {
    let mut pm = PhantomStateMachine::new(initial.clone(), dig.tau());
    let mut scores = Vec::with_capacity(events.len());
    for event in events {
        scores.push(score_event(dig, &pm, event, unseen));
        pm.apply(event);
    }
    scores
}

/// Computes the contextual-anomaly threshold `c` as the q-th percentile of
/// the training events' scores.
///
/// # Panics
///
/// Panics if `events` is empty or `q` is outside `[0, 100]`.
pub fn compute_threshold(
    dig: &Dig,
    events: &[BinaryEvent],
    initial: &SystemState,
    q: f64,
    unseen: UnseenContext,
) -> f64 {
    let scores = training_scores(dig, events, initial, unseen);
    percentile(&scores, q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Cpt, LaggedVar};
    use iot_model::{DeviceId, Timestamp};

    fn bev(t: u64, dev: usize, on: bool) -> BinaryEvent {
        BinaryEvent::new(Timestamp::from_secs(t), DeviceId::from_index(dev), on)
    }

    /// A 1-device DIG whose CPT says "the device flips every step".
    fn flip_dig() -> Dig {
        let cause = LaggedVar::new(DeviceId::from_index(0), 1);
        let mut cpt = Cpt::new(vec![cause], 0.0);
        // Context 0 (was off): 95 flips on, 5 stays off.
        for i in 0..100 {
            cpt.record(0, i < 95);
        }
        // Context 1 (was on): 95 flips off, 5 stays on.
        for i in 0..100 {
            cpt.record(1, i >= 95);
        }
        Dig::new(1, vec![vec![cause]], vec![cpt])
    }

    #[test]
    fn scores_reflect_cpt_likelihoods() {
        let dig = flip_dig();
        let initial = SystemState::all_off(1);
        // A flip (off -> on) is likely: score 1 - 0.95 = 0.05.
        let scores = training_scores(&dig, &[bev(1, 0, true)], &initial, UnseenContext::Marginal);
        assert!((scores[0] - 0.05).abs() < 1e-9);
        // A "stay off" report is unlikely: score 0.95.
        let scores = training_scores(&dig, &[bev(1, 0, false)], &initial, UnseenContext::Marginal);
        assert!((scores[0] - 0.95).abs() < 1e-9);
    }

    #[test]
    fn threshold_is_percentile_of_replayed_scores() {
        let dig = flip_dig();
        let initial = SystemState::all_off(1);
        // 99 well-behaved flips and one anomalous stay.
        let mut events: Vec<BinaryEvent> = (1..=99).map(|t| bev(t, 0, t % 2 == 1)).collect();
        events.push(bev(100, 0, events.last().unwrap().value));
        let c = compute_threshold(&dig, &events, &initial, 99.0, UnseenContext::Marginal);
        // The single 0.95-score event sits at the top percentile; the
        // threshold must separate it from the 0.05 mass.
        assert!(c > 0.05 && c <= 0.95, "c = {c}");
    }

    #[test]
    fn replay_threads_state_through_events() {
        let dig = flip_dig();
        let initial = SystemState::all_off(1);
        // Proper alternation: every event is a flip, all scores low.
        let events: Vec<BinaryEvent> = (1..=50).map(|t| bev(t, 0, t % 2 == 1)).collect();
        let scores = training_scores(&dig, &events, &initial, UnseenContext::Marginal);
        assert!(scores.iter().all(|&s| s < 0.1), "scores = {scores:?}");
    }
}
