//! Online model adaptation for behavioural drift.
//!
//! The paper attributes its contextual-detection false alarms mainly to
//! *user behavioural deviations*: an interaction changes its execution
//! frequency after training, and "the stove event is regarded as an
//! anomaly by the outdated interaction graph" (Section VI-C). Its
//! technical report defers the fix; this module implements the natural
//! one: fold runtime events that the detector deems normal back into the
//! conditional probability tables, so recurring new behaviour stops
//! alarming while one-off covert operations still do.
//!
//! Two safeguards keep the adaptation honest:
//!
//! * only events **below** the alarm threshold update the model
//!   automatically (an attacker cannot teach the model by repeating
//!   alarmed actions — each repetition keeps alarming), and alarmed
//!   events are folded in only through explicit user amendment
//!   ([`AdaptiveMonitor::amend_last`]), mirroring Algorithm 2's "report
//!   W to users for amendment",
//! * the threshold is re-estimated from a sliding window of recent scores
//!   at the same percentile `q`, so calibration tracks the score
//!   distribution.

use std::collections::VecDeque;

use iot_model::{BinaryEvent, SystemState};
use iot_stats::percentile::percentile;

use super::PhantomStateMachine;
use crate::graph::{Dig, UnseenContext};

/// Configuration for [`AdaptiveMonitor`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// Initial alarm threshold (usually the fitted model's).
    pub threshold: f64,
    /// Percentile used when re-estimating the threshold.
    pub q: f64,
    /// Unseen-context scoring policy.
    pub unseen: UnseenContext,
    /// Number of recent scores kept for threshold re-estimation; `0`
    /// disables re-estimation (the threshold stays fixed while the CPTs
    /// still adapt).
    pub score_window: usize,
    /// Re-estimate the threshold every this many events (ignored when
    /// `score_window == 0`).
    pub recalibrate_every: usize,
}

impl AdaptiveConfig {
    /// A sensible default around a fitted threshold.
    pub fn new(threshold: f64, q: f64) -> Self {
        AdaptiveConfig {
            threshold,
            q,
            unseen: UnseenContext::default(),
            score_window: 2_000,
            recalibrate_every: 200,
        }
    }
}

/// A contextual-anomaly monitor whose model keeps learning from normal
/// traffic.
#[derive(Debug, Clone)]
pub struct AdaptiveMonitor {
    dig: Dig,
    pm: PhantomStateMachine,
    config: AdaptiveConfig,
    threshold: f64,
    recent_scores: VecDeque<f64>,
    since_recalibration: usize,
    /// `(device, context code, value)` of the last observed event, for
    /// user amendment.
    last_observation: Option<(iot_model::DeviceId, usize, bool)>,
}

/// The adaptive monitor's verdict for one event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveVerdict {
    /// The Eq. 1 anomaly score.
    pub score: f64,
    /// Whether the event alarmed.
    pub anomalous: bool,
    /// The threshold in force when the event was scored.
    pub threshold: f64,
}

impl AdaptiveMonitor {
    /// Creates the monitor over an owned copy of the mined DIG.
    pub fn new(dig: Dig, initial: SystemState, config: AdaptiveConfig) -> Self {
        let tau = dig.tau();
        AdaptiveMonitor {
            dig,
            pm: PhantomStateMachine::new(initial, tau),
            threshold: config.threshold,
            config,
            recent_scores: VecDeque::new(),
            since_recalibration: 0,
            last_observation: None,
        }
    }

    /// User feedback on the most recent observation: the alarm was a
    /// false positive and the behaviour is legitimate. The event is folded
    /// into the CPT so the recurring pattern stops alarming — the
    /// adaptive realisation of Algorithm 2's "report W to users for
    /// amendment".
    ///
    /// Calling this when the last event did not alarm is a harmless
    /// double-count no-op semantically (the event was already recorded).
    pub fn amend_last(&mut self) {
        if let Some((device, code, value)) = self.last_observation {
            self.dig.cpt_mut(device).record(code, value);
        }
    }

    /// The threshold currently in force.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The (adapting) interaction graph.
    pub fn dig(&self) -> &Dig {
        &self.dig
    }

    /// Scores one event, updates the model on normal events, and
    /// periodically recalibrates the threshold.
    pub fn observe(&mut self, event: BinaryEvent) -> AdaptiveVerdict {
        let cpt = self.dig.cpt(event.device);
        let code = cpt.context_code(|c| self.pm.cause_value_for_next(c));
        let score = 1.0 - cpt.prob(code, event.value, self.config.unseen);
        let threshold = self.threshold;
        // Strictly greater: when the rolling threshold converges onto a
        // recurring score, that behaviour has become the new normal
        // (Algorithm 2's >= is kept in the non-adaptive detector).
        let anomalous = score > threshold;
        if !anomalous {
            // Confirmed-normal traffic refreshes the model.
            self.dig.cpt_mut(event.device).record(code, event.value);
        }
        self.last_observation = Some((event.device, code, event.value));
        self.pm.apply(&event);
        if self.config.score_window > 0 {
            self.recent_scores.push_back(score);
            while self.recent_scores.len() > self.config.score_window {
                self.recent_scores.pop_front();
            }
            self.since_recalibration += 1;
            if self.since_recalibration >= self.config.recalibrate_every
                && self.recent_scores.len() >= self.config.recalibrate_every
            {
                self.since_recalibration = 0;
                let scores: Vec<f64> = self.recent_scores.iter().copied().collect();
                self.threshold = percentile(&scores, self.config.q);
            }
        }
        AdaptiveVerdict {
            score,
            anomalous,
            threshold,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Cpt, LaggedVar};
    use iot_model::{DeviceId, Timestamp};

    fn bev(t: u64, dev: usize, on: bool) -> BinaryEvent {
        BinaryEvent::new(Timestamp::from_secs(t), DeviceId::from_index(dev), on)
    }

    /// Device 1 follows device 0 in training; then behaviour drifts:
    /// device 1 starts activating while device 0 is off.
    fn drift_dig() -> Dig {
        let c0 = LaggedVar::new(DeviceId::from_index(0), 1);
        let mut cpt0 = Cpt::new(vec![], 0.0);
        for i in 0..100 {
            cpt0.record(0, i % 2 == 0);
        }
        let mut cpt1 = Cpt::new(vec![c0], 0.0);
        for i in 0..200 {
            cpt1.record(1, i % 10 != 0); // cause on -> mostly on
            cpt1.record(0, i % 100 == 0); // cause off -> almost never on
        }
        Dig::new(1, vec![vec![], vec![c0]], vec![cpt0, cpt1])
    }

    #[test]
    fn static_behaviour_matches_fixed_detector() {
        let dig = drift_dig();
        let cfg = AdaptiveConfig {
            score_window: 0,
            ..AdaptiveConfig::new(0.9, 99.0)
        };
        let mut monitor = AdaptiveMonitor::new(dig, SystemState::all_off(2), cfg);
        // Normal pattern: device 0 on, device 1 follows.
        let v0 = monitor.observe(bev(1, 0, true));
        let v1 = monitor.observe(bev(2, 1, true));
        assert!(!v0.anomalous && !v1.anomalous);
        // Ghost: device 1 on with device 0 off.
        monitor.observe(bev(3, 1, false));
        monitor.observe(bev(4, 0, false));
        let ghost = monitor.observe(bev(5, 1, true));
        assert!(ghost.anomalous, "score {}", ghost.score);
    }

    #[test]
    fn amended_drift_stops_alarming() {
        let dig = drift_dig();
        let cfg = AdaptiveConfig {
            threshold: 0.95,
            score_window: 0,
            ..AdaptiveConfig::new(0.95, 99.0)
        };
        let mut monitor = AdaptiveMonitor::new(dig, SystemState::all_off(2), cfg);
        // Drifted routine: device 1 toggles on its own (device 0 stays
        // off). Every alarm is amended by the user ("that was me") —
        // after enough amendments the recurring behaviour becomes part of
        // the model and the alarms stop.
        let mut early_alarms = 0;
        let mut late_alarms = 0;
        for i in 0..300u64 {
            let v = monitor.observe(bev(10 + i, 1, i % 2 == 0));
            if v.anomalous {
                monitor.amend_last();
            }
            if i < 30 {
                early_alarms += usize::from(v.anomalous);
            }
            if i >= 270 {
                late_alarms += usize::from(v.anomalous);
            }
        }
        assert!(early_alarms > 0, "drift must alarm initially");
        assert_eq!(
            late_alarms, 0,
            "amended behaviour must stop alarming ({early_alarms} early alarms)"
        );
    }

    #[test]
    fn rolling_threshold_tracks_score_distribution() {
        let dig = drift_dig();
        let cfg = AdaptiveConfig {
            threshold: 0.5,
            score_window: 40,
            recalibrate_every: 10,
            ..AdaptiveConfig::new(0.5, 90.0)
        };
        let mut monitor = AdaptiveMonitor::new(dig, SystemState::all_off(2), cfg);
        // Feed the legitimate follow pattern; the rolling threshold rises
        // from the artificially low 0.5 toward the true quiet level.
        for i in 0..100u64 {
            let on = i % 2 == 0;
            monitor.observe(bev(4 * i, 0, on));
            monitor.observe(bev(4 * i + 1, 1, on));
        }
        assert!(
            monitor.threshold() != 0.5,
            "threshold must have been re-estimated"
        );
    }

    #[test]
    fn alarmed_events_do_not_teach_the_model() {
        let dig = drift_dig();
        let cfg = AdaptiveConfig {
            score_window: 0, // fixed threshold: adaptation only via CPTs
            ..AdaptiveConfig::new(0.9, 99.0)
        };
        let mut monitor = AdaptiveMonitor::new(dig, SystemState::all_off(2), cfg);
        // Repeat the ghost activation; with a fixed threshold, the
        // alarmed event is never recorded, so it keeps alarming.
        for i in 0..20u64 {
            let on = monitor.observe(bev(100 + 2 * i, 1, true));
            assert!(on.anomalous, "iteration {i}: score {}", on.score);
            // Reset device 1 between attempts (scores below threshold DO
            // adapt, which is fine: turning off in a quiet context is the
            // legitimate majority behaviour).
            monitor.observe(bev(101 + 2 * i, 1, false));
        }
    }
}
