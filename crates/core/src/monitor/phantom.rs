//! The phantom state machine (Section V-C).
//!
//! Maintains a memory of the most recent `τ + 1` system states. When an
//! event arrives, the machine derives the new system state, records it, and
//! slides out the oldest one — continuously tracking the latest graph
//! snapshot `G^t = (S^{t-τ}, ..., S^t)`. It also answers queries for the
//! values of a state's causes.
//!
//! ### Representation
//!
//! The window is *logically* `τ + 1` full system states, but storing (and
//! copying) them per event costs `O(n)` in the device count. Instead the
//! machine keeps the current state plus one tiny **transition ring** per
//! device: the last `τ + 1` `(step, value)` transitions of that device,
//! where `step` is the machine's event counter. `apply` then touches only
//! the event's own device (`O(1)`), and a lagged query scans at most
//! `τ + 1` ring entries for the newest transition at or before the target
//! step. A device transitions at most once per step, so the newest `τ + 1`
//! transitions always cover every step in the window; the ring is seeded
//! with the initial value at step 0, which answers queries reaching past
//! the first event (the home was in its initial state throughout). The
//! answers are exactly those of the materialised window — the equivalence
//! is pinned by `matches_state_series_semantics` below.

use iot_model::{BinaryEvent, DeviceId, SystemState};

use crate::graph::LaggedVar;

/// A sliding window over the last `τ + 1` system states.
#[derive(Debug, Clone, PartialEq)]
pub struct PhantomStateMachine {
    tau: usize,
    /// Events applied so far — the step clock the transition rings are
    /// stamped with.
    step: u64,
    /// The newest tracked system state `S^t`, mutated in place.
    current: SystemState,
    /// Per-device transition rings, flattened: device `d` owns
    /// `hist[d*(τ+1) .. (d+1)*(τ+1)]`; each entry packs `step << 1 | value`.
    hist: Vec<u64>,
    /// Index of the newest entry within each device's ring.
    newest: Vec<u32>,
    /// The device touched by the most recent [`apply`](Self::apply)
    /// (`u32::MAX` before the first event) and its value just before that
    /// transition. One step back, only this device can differ from the
    /// current state — so a `delta = 1` query (the *entire* non-current
    /// lagged population at τ = 2) resolves with one compare instead of a
    /// ring scan.
    last_dev: u32,
    last_old: bool,
}

impl PhantomStateMachine {
    /// Creates the machine with every slot initialised to `initial`
    /// (before any event, the home has been in its initial state
    /// throughout the window).
    pub fn new(initial: SystemState, tau: usize) -> Self {
        let cap = tau + 1;
        let n = initial.len();
        let mut hist = Vec::with_capacity(n * cap);
        for &value in initial.values() {
            let seed = value as u64; // step 0, initial value
            hist.extend(std::iter::repeat_n(seed, cap));
        }
        PhantomStateMachine {
            tau,
            step: 0,
            current: initial,
            hist,
            newest: vec![0; n],
            last_dev: u32::MAX,
            last_old: false,
        }
    }

    /// The maximum lag τ.
    pub fn tau(&self) -> usize {
        self.tau
    }

    /// Applies an event: derives `S^{t+1}` from `S^t`, records it, and
    /// drops `S^{t-τ}`.
    #[inline]
    pub fn apply(&mut self, event: &BinaryEvent) {
        self.last_dev = event.device.index() as u32;
        self.last_old = self.current.get(event.device);
        self.current.set(event.device, event.value);
        let step = self.step + 1;
        self.step = step;
        let cap = self.tau + 1;
        let d = event.device.index();
        let slot = {
            let next = self.newest[d] as usize + 1;
            if next == cap {
                0
            } else {
                next
            }
        };
        self.hist[d * cap + slot] = (step << 1) | event.value as u64;
        self.newest[d] = slot as u32;
    }

    /// The newest tracked system state `S^t`.
    #[inline]
    pub fn current(&self) -> &SystemState {
        &self.current
    }

    /// The state of `device` at lag `l` *relative to the current
    /// timestamp* (`l = 0` is the current state).
    ///
    /// # Panics
    ///
    /// Panics if `l > τ` or `device` is out of range.
    #[inline]
    pub fn lagged(&self, device: DeviceId, lag: usize) -> bool {
        assert!(lag <= self.tau, "lag {lag} exceeds τ {}", self.tau);
        if lag == 0 {
            return self.current.get(device);
        }
        // With fewer than `lag` events applied the target predates step 0;
        // saturating to 0 lands on the seeded initial value, exactly the
        // pre-filled window's answer.
        self.value_at(device.index(), self.step.saturating_sub(lag as u64))
    }

    /// The value of device `d` at `target` steps: the newest ring entry
    /// stamped at or before `target`.
    ///
    /// Branchless: entries pack `step << 1 | value`, so among the entries
    /// stamped at or before the target the *maximum* packed entry is the
    /// newest one (steps are distinct — a device transitions at most once
    /// per step — so the value bit never decides the order). Masking the
    /// too-new entries to zero keeps the scan free of data-dependent
    /// branches, which would mispredict on random streams. A zero `best`
    /// is indistinguishable from a masked entry only for the step-0 seed
    /// with value `false` — whose answer is `false` either way, and some
    /// entry always qualifies because seeds are stamped at step 0.
    #[inline]
    fn value_at(&self, d: usize, target: u64) -> bool {
        let cap = self.tau + 1;
        let ring = &self.hist[d * cap..(d + 1) * cap];
        let mut best = 0u64;
        for &entry in ring {
            let mask = 0u64.wrapping_sub(((entry >> 1) <= target) as u64);
            best = best.max(entry & mask);
        }
        (best & 1) == 1
    }

    /// Pre-validated fast-path form of [`cause_value_for_next`]
    /// (Self::cause_value_for_next) for the scoring inner loop: the cause
    /// is given as a raw device index plus `delta = lag − 1`, both already
    /// range-checked when the detector's dense tables were built, so the
    /// per-call asserts are gone. `delta = 0` (a lag-1 cause — the
    /// overwhelmingly common interaction in mined DIGs) short-circuits to
    /// a current-state read.
    #[inline]
    pub(crate) fn cause_value_fast(&self, d: usize, delta: u64) -> bool {
        if delta >= 2 {
            return self.value_at(d, self.step.saturating_sub(delta));
        }
        // delta ≤ 1 resolves against the current state with at most the
        // last apply undone; the selects are non-short-circuit `&`/`|` so
        // the unpredictable `d == last_dev` compare never becomes a
        // branch. Before the first event `last_dev` is `u32::MAX`,
        // matching nothing, and the current state *is* the seeded initial
        // state.
        let current = self.current.get(DeviceId::from_index(d));
        let undone = (delta == 1) & (d as u32 == self.last_dev);
        (undone & self.last_old) | (!undone & current)
    }

    /// Crate-internal decomposition into the exact runtime-mutable parts
    /// a live-state snapshot must persist (see
    /// `crate::pipeline::runtime_state`): `(step, current, hist, newest,
    /// last_dev, last_old)`. τ is available via [`Self::tau`].
    pub(crate) fn snapshot_parts(&self) -> (u64, &SystemState, &[u64], &[u32], u32, bool) {
        (
            self.step,
            &self.current,
            &self.hist,
            &self.newest,
            self.last_dev,
            self.last_old,
        )
    }

    /// Crate-internal inverse of [`Self::snapshot_parts`]: reassembles a
    /// machine bit-identical to the one the parts were taken from.
    ///
    /// # Panics
    ///
    /// Panics if the ring dimensions are inconsistent with `current` and
    /// `tau` (a snapshot for a different model shape).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_snapshot_parts(
        tau: usize,
        step: u64,
        current: SystemState,
        hist: Vec<u64>,
        newest: Vec<u32>,
        last_dev: u32,
        last_old: bool,
    ) -> Self {
        let cap = tau + 1;
        let n = current.len();
        assert_eq!(hist.len(), n * cap, "ring history length mismatch");
        assert_eq!(newest.len(), n, "ring index length mismatch");
        assert!(
            newest.iter().all(|&slot| (slot as usize) < cap),
            "ring index out of range"
        );
        PhantomStateMachine {
            tau,
            step,
            current,
            hist,
            newest,
            last_dev,
            last_old,
        }
    }

    /// The value a cause variable will take for the *next* incoming event:
    /// for an event at timestamp `t + 1`, cause `S_k^{(t+1)-l}` resolves to
    /// the stored state at lag `l − 1`.
    ///
    /// This is the query used by the anomaly-score calculation, which must
    /// read cause values *before* the event is applied.
    ///
    /// # Panics
    ///
    /// Panics if `var.lag` is `0` (causes always lag at least 1) or
    /// exceeds `τ`.
    #[inline]
    pub fn cause_value_for_next(&self, var: LaggedVar) -> bool {
        assert!(var.lag >= 1, "causes must have lag >= 1");
        self.lagged(var.device, var.lag - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iot_model::Timestamp;

    fn bev(t: u64, dev: usize, on: bool) -> BinaryEvent {
        BinaryEvent::new(Timestamp::from_secs(t), DeviceId::from_index(dev), on)
    }

    fn lv(dev: usize, lag: usize) -> LaggedVar {
        LaggedVar::new(DeviceId::from_index(dev), lag)
    }

    #[test]
    fn tracks_window_of_tau_plus_one_states() {
        let mut pm = PhantomStateMachine::new(SystemState::all_off(2), 2);
        pm.apply(&bev(1, 0, true)); // S^1 = 10
        pm.apply(&bev(2, 1, true)); // S^2 = 11
        pm.apply(&bev(3, 0, false)); // S^3 = 01
                                     // Window is (S^1, S^2, S^3).
        assert!(!pm.lagged(DeviceId::from_index(0), 0));
        assert!(pm.lagged(DeviceId::from_index(1), 0));
        assert!(pm.lagged(DeviceId::from_index(0), 1)); // S^2: device 0 on
        assert!(pm.lagged(DeviceId::from_index(0), 2)); // S^1: device 0 on
        assert!(!pm.lagged(DeviceId::from_index(1), 2)); // S^1: device 1 off
    }

    #[test]
    fn cause_values_resolve_against_pre_event_states() {
        let mut pm = PhantomStateMachine::new(SystemState::all_off(2), 2);
        pm.apply(&bev(1, 0, true));
        // Next event will be at t+1; its lag-1 cause is the *current*
        // state (device 0 = on), lag-2 cause is one step earlier (off).
        assert!(pm.cause_value_for_next(lv(0, 1)));
        assert!(!pm.cause_value_for_next(lv(0, 2)));
    }

    #[test]
    fn matches_state_series_semantics() {
        use iot_model::StateSeries;
        let events = vec![
            bev(1, 0, true),
            bev(2, 1, true),
            bev(3, 0, false),
            bev(4, 1, false),
        ];
        let series = StateSeries::derive(SystemState::all_off(2), events.clone());
        let tau = 2;
        let mut pm = PhantomStateMachine::new(SystemState::all_off(2), tau);
        for (j, event) in events.iter().enumerate() {
            let j = j + 1; // events are 1-based in the series
                           // Before applying e^j, cause values for the incoming event must
                           // match s_k^{j-l} from the series.
            for dev in 0..2 {
                for lag in 1..=tau {
                    if lag <= j {
                        assert_eq!(
                            pm.cause_value_for_next(lv(dev, lag)),
                            series.lagged(j, DeviceId::from_index(dev), lag),
                            "event {j} device {dev} lag {lag}"
                        );
                    }
                }
            }
            pm.apply(event);
            assert_eq!(pm.current(), series.state(j), "after event {j}");
        }
    }

    /// The transition-ring representation answers every (device, lag)
    /// query exactly like a materialised `τ + 1` window, across rings that
    /// wrap many times, repeated same-device bursts, and no-op re-reports.
    #[test]
    fn ring_representation_matches_materialised_window() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        use std::collections::VecDeque;
        let n = 4;
        for tau in 1..=4usize {
            let mut rng = StdRng::seed_from_u64(1000 + tau as u64);
            let mut pm = PhantomStateMachine::new(SystemState::all_off(n), tau);
            // Reference: the old explicit window of τ+1 full states.
            let mut window: VecDeque<SystemState> =
                std::iter::repeat_n(SystemState::all_off(n), tau + 1).collect();
            for t in 0..200u64 {
                // Bursts on one device stress the ring wrap-around.
                let dev = if t % 7 < 3 { 0 } else { rng.gen_range(0..n) };
                let event = bev(t + 1, dev, rng.gen_bool(0.5));
                pm.apply(&event);
                let mut next = window.back().expect("window never empty").clone();
                next.set(event.device, event.value);
                window.pop_front();
                window.push_back(next);
                for d in 0..n {
                    for lag in 0..=tau {
                        assert_eq!(
                            pm.lagged(DeviceId::from_index(d), lag),
                            window[tau - lag].get(DeviceId::from_index(d)),
                            "t={t} τ={tau} device {d} lag {lag}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "lag >= 1")]
    fn zero_lag_cause_rejected() {
        let pm = PhantomStateMachine::new(SystemState::all_off(1), 1);
        pm.cause_value_for_next(lv(0, 0));
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn lag_beyond_window_rejected() {
        let pm = PhantomStateMachine::new(SystemState::all_off(1), 1);
        pm.lagged(DeviceId::from_index(0), 2);
    }
}
