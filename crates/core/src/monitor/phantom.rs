//! The phantom state machine (Section V-C).
//!
//! Maintains a memory of the most recent `τ + 1` system states. When an
//! event arrives, the machine derives the new system state, records it, and
//! slides out the oldest one — continuously tracking the latest graph
//! snapshot `G^t = (S^{t-τ}, ..., S^t)`. It also answers queries for the
//! values of a state's causes.

use std::collections::VecDeque;

use iot_model::{BinaryEvent, DeviceId, SystemState};

use crate::graph::LaggedVar;

/// A sliding window over the last `τ + 1` system states.
#[derive(Debug, Clone, PartialEq)]
pub struct PhantomStateMachine {
    tau: usize,
    /// Front = oldest (`S^{t-τ}`), back = newest (`S^t`).
    states: VecDeque<SystemState>,
}

impl PhantomStateMachine {
    /// Creates the machine with every slot initialised to `initial`
    /// (before any event, the home has been in its initial state
    /// throughout the window).
    pub fn new(initial: SystemState, tau: usize) -> Self {
        let mut states = VecDeque::with_capacity(tau + 1);
        for _ in 0..=tau {
            states.push_back(initial.clone());
        }
        PhantomStateMachine { tau, states }
    }

    /// The maximum lag τ.
    pub fn tau(&self) -> usize {
        self.tau
    }

    /// Applies an event: derives `S^{t+1}` from `S^t`, records it, and
    /// drops `S^{t-τ}`.
    pub fn apply(&mut self, event: &BinaryEvent) {
        // Recycle the evicted oldest state's buffer instead of allocating
        // a fresh one per event — the monitor hot path stays allocation-free.
        let mut next = self.states.pop_front().expect("window is never empty");
        // With τ = 0 the window holds a single state, mutated in place.
        if let Some(current) = self.states.back() {
            next.clone_from(current);
        }
        next.set(event.device, event.value);
        self.states.push_back(next);
    }

    /// The newest tracked system state `S^t`.
    pub fn current(&self) -> &SystemState {
        self.states.back().expect("window is never empty")
    }

    /// The state of `device` at lag `l` *relative to the current
    /// timestamp* (`l = 0` is the current state).
    ///
    /// # Panics
    ///
    /// Panics if `l > τ` or `device` is out of range.
    pub fn lagged(&self, device: DeviceId, lag: usize) -> bool {
        assert!(lag <= self.tau, "lag {lag} exceeds τ {}", self.tau);
        self.states[self.tau - lag].get(device)
    }

    /// The value a cause variable will take for the *next* incoming event:
    /// for an event at timestamp `t + 1`, cause `S_k^{(t+1)-l}` resolves to
    /// the stored state at lag `l − 1`.
    ///
    /// This is the query used by the anomaly-score calculation, which must
    /// read cause values *before* the event is applied.
    ///
    /// # Panics
    ///
    /// Panics if `var.lag` is `0` (causes always lag at least 1) or
    /// exceeds `τ`.
    pub fn cause_value_for_next(&self, var: LaggedVar) -> bool {
        assert!(var.lag >= 1, "causes must have lag >= 1");
        self.lagged(var.device, var.lag - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iot_model::Timestamp;

    fn bev(t: u64, dev: usize, on: bool) -> BinaryEvent {
        BinaryEvent::new(Timestamp::from_secs(t), DeviceId::from_index(dev), on)
    }

    fn lv(dev: usize, lag: usize) -> LaggedVar {
        LaggedVar::new(DeviceId::from_index(dev), lag)
    }

    #[test]
    fn tracks_window_of_tau_plus_one_states() {
        let mut pm = PhantomStateMachine::new(SystemState::all_off(2), 2);
        pm.apply(&bev(1, 0, true)); // S^1 = 10
        pm.apply(&bev(2, 1, true)); // S^2 = 11
        pm.apply(&bev(3, 0, false)); // S^3 = 01
                                     // Window is (S^1, S^2, S^3).
        assert!(!pm.lagged(DeviceId::from_index(0), 0));
        assert!(pm.lagged(DeviceId::from_index(1), 0));
        assert!(pm.lagged(DeviceId::from_index(0), 1)); // S^2: device 0 on
        assert!(pm.lagged(DeviceId::from_index(0), 2)); // S^1: device 0 on
        assert!(!pm.lagged(DeviceId::from_index(1), 2)); // S^1: device 1 off
    }

    #[test]
    fn cause_values_resolve_against_pre_event_states() {
        let mut pm = PhantomStateMachine::new(SystemState::all_off(2), 2);
        pm.apply(&bev(1, 0, true));
        // Next event will be at t+1; its lag-1 cause is the *current*
        // state (device 0 = on), lag-2 cause is one step earlier (off).
        assert!(pm.cause_value_for_next(lv(0, 1)));
        assert!(!pm.cause_value_for_next(lv(0, 2)));
    }

    #[test]
    fn matches_state_series_semantics() {
        use iot_model::StateSeries;
        let events = vec![
            bev(1, 0, true),
            bev(2, 1, true),
            bev(3, 0, false),
            bev(4, 1, false),
        ];
        let series = StateSeries::derive(SystemState::all_off(2), events.clone());
        let tau = 2;
        let mut pm = PhantomStateMachine::new(SystemState::all_off(2), tau);
        for (j, event) in events.iter().enumerate() {
            let j = j + 1; // events are 1-based in the series
                           // Before applying e^j, cause values for the incoming event must
                           // match s_k^{j-l} from the series.
            for dev in 0..2 {
                for lag in 1..=tau {
                    if lag <= j {
                        assert_eq!(
                            pm.cause_value_for_next(lv(dev, lag)),
                            series.lagged(j, DeviceId::from_index(dev), lag),
                            "event {j} device {dev} lag {lag}"
                        );
                    }
                }
            }
            pm.apply(event);
            assert_eq!(pm.current(), series.state(j), "after event {j}");
        }
    }

    #[test]
    #[should_panic(expected = "lag >= 1")]
    fn zero_lag_cause_rejected() {
        let pm = PhantomStateMachine::new(SystemState::all_off(1), 1);
        pm.cause_value_for_next(lv(0, 0));
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn lag_beyond_window_rejected() {
        let pm = PhantomStateMachine::new(SystemState::all_off(1), 1);
        pm.lagged(DeviceId::from_index(0), 2);
    }
}
