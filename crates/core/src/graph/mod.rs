//! The Device Interaction Graph (DIG) of Section III.
//!
//! A DIG is an extended causal graph `G = (V, E, P)` whose nodes are
//! time-lagged device states, whose directed edges point from time-lagged
//! causes to present-time outcomes, and whose conditional probability
//! tables quantify each outcome's state distribution under its causes.
//!
//! Under the paper's two assumptions — the τ-th-order Markov assumption
//! (causes lag at most τ) and the stationarity assumption (interactions are
//! time-invariant) — the whole graph is determined by, for each device `i`,
//! the cause set `Ca(S_i^t)` and the CPT
//! `P(S_i^t | Ca(S_i^t))`. That is exactly what [`Dig`] stores.

mod cpt;
mod dig;
mod dot;
mod persist;
mod var;

pub use cpt::{Cpt, UnseenContext};
pub use dig::{Dig, Interaction};
pub use dot::render_dot;
pub(crate) use persist::load_dig_with_smoothing;
pub use persist::{load_dig, save_dig};
pub use var::LaggedVar;
