//! Graphviz DOT export of a DIG (reproduces Figure 2-style drawings).

use iot_model::DeviceRegistry;

use super::Dig;

/// Renders the DIG in Graphviz DOT format.
///
/// Nodes are devices (collapsing the repeated time-lagged copies, per the
/// stationarity assumption); each edge is labelled with its lag.
/// Autocorrelation edges render as dashed self-loops, mirroring the dashed
/// repeated edges of the paper's Figure 2.
///
/// # Example
///
/// ```
/// use causaliot_core::graph::{Cpt, Dig, LaggedVar, render_dot};
/// use iot_model::{Attribute, DeviceId, DeviceRegistry, Room};
///
/// # fn main() -> Result<(), iot_model::ModelError> {
/// let mut reg = DeviceRegistry::new();
/// let a = reg.add("S_light", Attribute::Switch, Room::new("living"))?;
/// let b = reg.add("P_heater", Attribute::PowerSensor, Room::new("living"))?;
/// let causes = vec![vec![], vec![LaggedVar::new(a, 1)]];
/// let cpts = causes.iter().map(|c| Cpt::new(c.clone(), 0.0)).collect();
/// let dig = Dig::new(1, causes, cpts);
/// let dot = render_dot(&dig, &reg);
/// assert!(dot.contains("\"S_light\" -> \"P_heater\""));
/// # Ok(())
/// # }
/// ```
pub fn render_dot(dig: &Dig, registry: &DeviceRegistry) -> String {
    let mut out = String::from("digraph dig {\n  rankdir=LR;\n  node [shape=box];\n");
    for device in registry.iter() {
        out.push_str(&format!(
            "  \"{}\" [label=\"{}\\n({})\"];\n",
            device.name(),
            device.name(),
            device.attribute()
        ));
    }
    for edge in dig.interactions() {
        let cause = registry.name(edge.cause.device);
        let outcome = registry.name(edge.outcome);
        let style = if edge.is_autocorrelation() {
            ", style=dashed"
        } else {
            ""
        };
        out.push_str(&format!(
            "  \"{cause}\" -> \"{outcome}\" [label=\"lag {}\"{style}];\n",
            edge.cause.lag
        ));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Cpt, LaggedVar};
    use iot_model::{Attribute, Room};

    #[test]
    fn dot_contains_all_edges_and_styles() {
        let mut reg = DeviceRegistry::new();
        let a = reg
            .add(
                "PE_kitchen",
                Attribute::PresenceSensor,
                Room::new("kitchen"),
            )
            .unwrap();
        let b = reg
            .add("P_stove", Attribute::PowerSensor, Room::new("kitchen"))
            .unwrap();
        let causes = vec![vec![], vec![LaggedVar::new(a, 2), LaggedVar::new(b, 1)]];
        let cpts = causes.iter().map(|c| Cpt::new(c.clone(), 0.0)).collect();
        let dig = Dig::new(2, causes, cpts);
        let dot = render_dot(&dig, &reg);
        assert!(dot.starts_with("digraph dig {"));
        assert!(dot.contains("\"PE_kitchen\" -> \"P_stove\" [label=\"lag 2\"]"));
        assert!(dot.contains("\"P_stove\" -> \"P_stove\" [label=\"lag 1\", style=dashed]"));
        assert!(dot.trim_end().ends_with('}'));
    }
}
