//! The Device Interaction Graph structure.

use std::collections::BTreeSet;

use iot_model::DeviceId;
use serde::{Deserialize, Serialize};

use super::{Cpt, LaggedVar};

/// One mined interaction: a directed edge from a time-lagged cause to a
/// present-time outcome device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Interaction {
    /// The cause (parent device at some lag `1..=τ`).
    pub cause: LaggedVar,
    /// The outcome (child device at the present timestamp).
    pub outcome: DeviceId,
}

impl Interaction {
    /// Whether this is an autocorrelation edge (device causing itself).
    pub fn is_autocorrelation(&self) -> bool {
        self.cause.device == self.outcome
    }
}

/// A fitted Device Interaction Graph.
///
/// Thanks to the stationarity assumption, the graph is fully described by
/// each device's cause set and CPT; repeated (dashed) edges at earlier
/// timestamps are implied.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dig {
    tau: usize,
    /// Per outcome device: its ordered cause set (matches the CPT's bit
    /// order).
    causes: Vec<Vec<LaggedVar>>,
    /// Per outcome device: its conditional probability table.
    cpts: Vec<Cpt>,
}

impl Dig {
    /// Assembles a DIG from per-device cause sets and CPTs.
    ///
    /// # Panics
    ///
    /// Panics if `causes` and `cpts` disagree in length or ordering, if a
    /// cause's lag is outside `1..=tau`, or if a cause references an
    /// out-of-range device.
    pub fn new(tau: usize, causes: Vec<Vec<LaggedVar>>, cpts: Vec<Cpt>) -> Self {
        assert_eq!(causes.len(), cpts.len(), "one CPT per device required");
        let n = causes.len();
        for (device, (ca, cpt)) in causes.iter().zip(&cpts).enumerate() {
            assert_eq!(
                ca.as_slice(),
                cpt.causes(),
                "CPT cause order must match the cause set for device {device}"
            );
            for cause in ca {
                assert!(
                    (1..=tau).contains(&cause.lag),
                    "cause lag {} outside 1..={tau}",
                    cause.lag
                );
                assert!(
                    cause.device.index() < n,
                    "cause device {} out of range",
                    cause.device
                );
            }
        }
        Dig { tau, causes, cpts }
    }

    /// The maximum time lag τ the graph was mined with.
    pub fn tau(&self) -> usize {
        self.tau
    }

    /// Number of devices `n`.
    pub fn num_devices(&self) -> usize {
        self.causes.len()
    }

    /// The cause set `Ca(S_i^t)` of a device.
    ///
    /// # Panics
    ///
    /// Panics if `device` is out of range.
    pub fn causes_of(&self, device: DeviceId) -> &[LaggedVar] {
        &self.causes[device.index()]
    }

    /// The CPT of a device.
    ///
    /// # Panics
    ///
    /// Panics if `device` is out of range.
    pub fn cpt(&self, device: DeviceId) -> &Cpt {
        &self.cpts[device.index()]
    }

    /// Mutable access to a device's CPT — used by the adaptive monitor to
    /// fold confirmed-normal runtime observations back into the model
    /// (behavioural-drift mitigation; see
    /// [`crate::monitor::AdaptiveMonitor`]).
    ///
    /// # Panics
    ///
    /// Panics if `device` is out of range.
    pub fn cpt_mut(&mut self, device: DeviceId) -> &mut Cpt {
        &mut self.cpts[device.index()]
    }

    /// Iterates over every mined interaction (edge), in deterministic
    /// order.
    pub fn interactions(&self) -> impl Iterator<Item = Interaction> + '_ {
        self.causes
            .iter()
            .enumerate()
            .flat_map(|(outcome, causes)| {
                causes.iter().map(move |&cause| Interaction {
                    cause,
                    outcome: DeviceId::from_index(outcome),
                })
            })
    }

    /// Total number of edges in the graph.
    pub fn num_interactions(&self) -> usize {
        self.causes.iter().map(Vec::len).sum()
    }

    /// The set of `(cause device, outcome device)` pairs, collapsing lags —
    /// the granularity at which the paper matches mined interactions
    /// against ground truth (Section VI-B).
    pub fn interaction_pairs(&self) -> BTreeSet<(DeviceId, DeviceId)> {
        self.interactions()
            .map(|e| (e.cause.device, e.outcome))
            .collect()
    }

    /// The *children* of a device: outcomes that list any lag of `device`
    /// among their causes. Useful for tracking anomaly propagation.
    pub fn children_of(&self, device: DeviceId) -> Vec<DeviceId> {
        self.causes
            .iter()
            .enumerate()
            .filter(|(_, causes)| causes.iter().any(|c| c.device == device))
            .map(|(i, _)| DeviceId::from_index(i))
            .collect()
    }

    /// The maximum in-degree over all devices (`k` in the complexity
    /// analysis of Section V-D).
    pub fn max_in_degree(&self) -> usize {
        self.causes.iter().map(Vec::len).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::UnseenContext;

    fn lv(d: usize, lag: usize) -> LaggedVar {
        LaggedVar::new(DeviceId::from_index(d), lag)
    }

    /// Builds the didactic 3-device DIG of the paper's Figure 2:
    /// S1 -> S2 (lag 1), S2 -> S3 (lag 2), S3 -> S3 (lag 1), S3 -> S4 is
    /// out of scope here (only 3 devices).
    fn figure2_like() -> Dig {
        let causes = vec![
            vec![],                   // device 0: no causes
            vec![lv(0, 1)],           // device 1 <- device 0 lag 1
            vec![lv(1, 2), lv(2, 1)], // device 2 <- device 1 lag 2, self lag 1
        ];
        let cpts = causes.iter().map(|ca| Cpt::new(ca.clone(), 0.0)).collect();
        Dig::new(2, causes, cpts)
    }

    #[test]
    fn edge_enumeration() {
        let dig = figure2_like();
        assert_eq!(dig.num_interactions(), 3);
        let pairs = dig.interaction_pairs();
        assert!(pairs.contains(&(DeviceId::from_index(0), DeviceId::from_index(1))));
        assert!(pairs.contains(&(DeviceId::from_index(2), DeviceId::from_index(2))));
        assert_eq!(pairs.len(), 3);
    }

    #[test]
    fn autocorrelation_detection() {
        let dig = figure2_like();
        let auto: Vec<Interaction> = dig
            .interactions()
            .filter(Interaction::is_autocorrelation)
            .collect();
        assert_eq!(auto.len(), 1);
        assert_eq!(auto[0].outcome.index(), 2);
    }

    #[test]
    fn children_lookup() {
        let dig = figure2_like();
        assert_eq!(
            dig.children_of(DeviceId::from_index(1)),
            vec![DeviceId::from_index(2)]
        );
        assert_eq!(
            dig.children_of(DeviceId::from_index(0)),
            vec![DeviceId::from_index(1)]
        );
        assert!(dig
            .children_of(DeviceId::from_index(2))
            .contains(&DeviceId::from_index(2)));
    }

    #[test]
    fn degree_and_accessors() {
        let dig = figure2_like();
        assert_eq!(dig.max_in_degree(), 2);
        assert_eq!(dig.tau(), 2);
        assert_eq!(dig.num_devices(), 3);
        assert_eq!(dig.causes_of(DeviceId::from_index(2)).len(), 2);
        assert_eq!(
            dig.cpt(DeviceId::from_index(2))
                .prob(0, true, UnseenContext::Uniform),
            0.5
        );
    }

    #[test]
    #[should_panic(expected = "lag")]
    fn rejects_lag_beyond_tau() {
        let causes = vec![vec![lv(0, 3)]];
        let cpts = vec![Cpt::new(vec![lv(0, 3)], 0.0)];
        Dig::new(2, causes, cpts);
    }

    #[test]
    #[should_panic(expected = "cause order")]
    fn rejects_mismatched_cpt() {
        let causes = vec![vec![lv(0, 1)]];
        let cpts = vec![Cpt::new(vec![], 0.0)];
        Dig::new(2, causes, cpts);
    }
}
