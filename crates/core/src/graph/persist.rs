//! Plain-text persistence for fitted interaction graphs.
//!
//! A deployed monitor fits once on weeks of history and then validates
//! events for months; this module serialises a mined [`Dig`] (plus the
//! calibrated threshold) to a small line-oriented text format so a fitted
//! model can be stored next to the platform's configuration and reloaded
//! without re-mining. The format is versioned, diff-friendly, and carries
//! exact CPT counts, so a round-trip reproduces scores bit-for-bit.
//!
//! ```text
//! causaliot-dig v1
//! tau 2
//! devices 3
//! threshold 0.9942          # shortest round-trippable f64 form
//! causes 2 1:1 2:2          # outcome device, then cause device:lag pairs
//! cpt 2 0 40 3              # outcome device, context code, off-count, on-count
//! ...
//! ```
//!
//! The threshold is written with Rust's `{:?}` float formatting — the
//! shortest decimal string that parses back to the exact same bits — so a
//! load→save→load cycle is byte-stable even for values like `0.1 + 0.2`.

use std::fmt::Write as _;

use iot_model::DeviceId;

use super::{Cpt, Dig, LaggedVar};
use crate::CausalIotError;

const MAGIC: &str = "causaliot-dig v1";

/// Serialises a DIG and its calibrated threshold.
pub fn save_dig(dig: &Dig, threshold: f64) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{MAGIC}");
    let _ = writeln!(out, "tau {}", dig.tau());
    let _ = writeln!(out, "devices {}", dig.num_devices());
    let _ = writeln!(out, "threshold {threshold:?}");
    for device in 0..dig.num_devices() {
        let id = DeviceId::from_index(device);
        let causes = dig.causes_of(id);
        let _ = write!(out, "causes {device}");
        for cause in causes {
            let _ = write!(out, " {}:{}", cause.device.index(), cause.lag);
        }
        out.push('\n');
        let cpt = dig.cpt(id);
        for code in 0..cpt.num_contexts() {
            let [off, on] = cpt.counts(code);
            if off != 0 || on != 0 {
                let _ = writeln!(out, "cpt {device} {code} {off} {on}");
            }
        }
    }
    out
}

fn parse_err(line: usize, reason: impl Into<String>) -> CausalIotError {
    CausalIotError::Model(iot_model::ModelError::ParseLog {
        line,
        reason: reason.into(),
    })
}

/// Restores a DIG and threshold from [`save_dig`] output.
///
/// # Errors
///
/// Returns an error for wrong magic, malformed lines, or inconsistent
/// indices.
pub fn load_dig(text: &str) -> Result<(Dig, f64), CausalIotError> {
    load_dig_with_smoothing(text, 0.0)
}

/// Like [`load_dig`], restoring CPTs with the given Laplace smoothing
/// pseudo-count (the format carries raw counts only; a full-model
/// checkpoint re-applies its configured smoothing on load).
pub(crate) fn load_dig_with_smoothing(
    text: &str,
    smoothing: f64,
) -> Result<(Dig, f64), CausalIotError> {
    let mut lines = text.lines().enumerate();
    let (_, magic) = lines
        .next()
        .ok_or_else(|| parse_err(1, "empty model file"))?;
    let magic = magic.trim();
    if magic != MAGIC {
        if let Some(version) = magic.strip_prefix("causaliot-dig ") {
            return Err(parse_err(
                1,
                format!("unsupported version `{version}` (this build reads v1)"),
            ));
        }
        return Err(parse_err(1, format!("bad magic `{magic}`")));
    }
    let mut tau: Option<usize> = None;
    let mut num_devices: Option<usize> = None;
    let mut threshold: Option<f64> = None;
    let mut causes: Vec<Vec<LaggedVar>> = Vec::new();
    let mut cpts: Vec<Cpt> = Vec::new();

    for (idx, raw) in lines {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let key = parts.next().expect("non-empty line");
        match key {
            "tau" => {
                tau = Some(
                    parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| parse_err(line_no, "bad tau"))?,
                );
            }
            "devices" => {
                let n: usize = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err(line_no, "bad device count"))?;
                num_devices = Some(n);
                causes = vec![Vec::new(); n];
                cpts = Vec::with_capacity(n);
            }
            "threshold" => {
                threshold = Some(
                    parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| parse_err(line_no, "bad threshold"))?,
                );
            }
            "causes" => {
                let device: usize = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err(line_no, "bad outcome device"))?;
                let n = num_devices.ok_or_else(|| parse_err(line_no, "causes before devices"))?;
                if device != cpts.len() || device >= n {
                    return Err(parse_err(line_no, "causes lines out of order"));
                }
                let mut cause_list = Vec::new();
                for pair in parts {
                    let (dev, lag) = pair
                        .split_once(':')
                        .ok_or_else(|| parse_err(line_no, "bad cause pair"))?;
                    let dev: usize = dev
                        .parse()
                        .map_err(|_| parse_err(line_no, "bad cause device"))?;
                    let lag: usize = lag
                        .parse()
                        .map_err(|_| parse_err(line_no, "bad cause lag"))?;
                    cause_list.push(LaggedVar::new(DeviceId::from_index(dev), lag));
                }
                cpts.push(Cpt::new(cause_list.clone(), smoothing));
                causes[device] = cause_list;
            }
            "cpt" => {
                let mut next_num = |what: &str| -> Result<u64, CausalIotError> {
                    parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| parse_err(line_no, format!("bad {what}")))
                };
                let device = next_num("device")? as usize;
                let code = next_num("context code")? as usize;
                let off = next_num("off-count")?;
                let on = next_num("on-count")?;
                let cpt = cpts
                    .get_mut(device)
                    .ok_or_else(|| parse_err(line_no, "cpt before its causes line"))?;
                if code >= cpt.num_contexts() {
                    return Err(parse_err(line_no, "context code out of range"));
                }
                cpt.restore(code, [off, on]);
            }
            other => return Err(parse_err(line_no, format!("unknown record `{other}`"))),
        }
    }
    let tau = tau.ok_or_else(|| parse_err(0, "missing tau"))?;
    let n = num_devices.ok_or_else(|| parse_err(0, "missing devices"))?;
    let threshold = threshold.ok_or_else(|| parse_err(0, "missing threshold"))?;
    if cpts.len() != n {
        return Err(parse_err(0, "missing causes lines for some devices"));
    }
    Ok((Dig::new(tau, causes, cpts), threshold))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::UnseenContext;

    fn lv(d: usize, lag: usize) -> LaggedVar {
        LaggedVar::new(DeviceId::from_index(d), lag)
    }

    fn sample_dig() -> Dig {
        let causes = vec![vec![], vec![lv(0, 1), lv(1, 2)]];
        let mut cpts: Vec<Cpt> = causes.iter().map(|c| Cpt::new(c.clone(), 0.0)).collect();
        cpts[0].record(0, true);
        cpts[0].record(0, false);
        cpts[1].record(0b01, true);
        cpts[1].record(0b01, true);
        cpts[1].record(0b10, false);
        Dig::new(2, causes, cpts)
    }

    #[test]
    fn round_trip_preserves_scores_exactly() {
        let dig = sample_dig();
        let text = save_dig(&dig, 0.975);
        let (loaded, threshold) = load_dig(&text).expect("parses");
        assert_eq!(threshold, 0.975);
        assert_eq!(loaded.tau(), dig.tau());
        assert_eq!(loaded.num_devices(), dig.num_devices());
        for d in 0..dig.num_devices() {
            let id = DeviceId::from_index(d);
            assert_eq!(loaded.causes_of(id), dig.causes_of(id));
            let (a, b) = (dig.cpt(id), loaded.cpt(id));
            for code in 0..a.num_contexts() {
                for value in [false, true] {
                    assert_eq!(
                        a.prob(code, value, UnseenContext::Marginal).to_bits(),
                        b.prob(code, value, UnseenContext::Marginal).to_bits(),
                        "device {d} code {code} value {value}"
                    );
                }
            }
        }
    }

    #[test]
    fn format_is_human_readable() {
        let text = save_dig(&sample_dig(), 0.9);
        assert!(text.starts_with("causaliot-dig v1\n"));
        assert!(text.contains("tau 2"));
        assert!(text.contains("causes 1 0:1 1:2"));
        assert!(text.contains("cpt 1 1 0 2"));
    }

    #[test]
    fn rejects_corrupt_inputs() {
        assert!(load_dig("").is_err());
        assert!(load_dig("not-a-model\n").is_err());
        let good = save_dig(&sample_dig(), 0.9);
        let truncated: String = good.lines().take(3).collect::<Vec<_>>().join("\n");
        assert!(load_dig(&truncated).is_err());
        let corrupted = good.replace("cpt 1 1 0 2", "cpt 1 99 0 2");
        assert!(load_dig(&corrupted).is_err());
        let garbage = good + "wat 1 2 3\n";
        assert!(load_dig(&garbage).is_err());
    }

    #[test]
    fn unknown_version_is_rejected_with_clear_error() {
        let text = save_dig(&sample_dig(), 0.9).replace("causaliot-dig v1", "causaliot-dig v9");
        let err = load_dig(&text).unwrap_err();
        let message = err.to_string();
        assert!(
            message.contains("unsupported version") && message.contains("v9"),
            "got: {message}"
        );
        // A non-dig header is still a plain magic mismatch.
        let other = load_dig("causaliot-model v2\n").unwrap_err().to_string();
        assert!(other.contains("bad magic"), "got: {other}");
    }

    #[test]
    fn threshold_round_trip_is_byte_stable() {
        // 0.1 + 0.2 has no short decimal form; `{:?}` must still emit a
        // string that parses back to the exact same bits.
        let threshold = 0.1 + 0.2;
        let first = save_dig(&sample_dig(), threshold);
        let (dig, loaded_threshold) = load_dig(&first).expect("parses");
        assert_eq!(loaded_threshold.to_bits(), threshold.to_bits());
        let second = save_dig(&dig, loaded_threshold);
        assert_eq!(first, second, "load→save→load must be byte-stable");
        let (_, third_threshold) = load_dig(&second).expect("parses");
        assert_eq!(third_threshold.to_bits(), threshold.to_bits());
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let mut text = save_dig(&sample_dig(), 0.9);
        text.push_str("\n# a trailing comment\n\n");
        assert!(load_dig(&text).is_ok());
    }
}
