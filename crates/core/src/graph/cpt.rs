//! Conditional probability tables (the `P` component of the DIG).

use serde::{Deserialize, Serialize};

use super::LaggedVar;

/// Policy for scoring an event whose cause-value combination never occurred
/// in training.
///
/// The paper's maximum-likelihood estimation leaves such contexts
/// undefined; this enum makes the choice explicit (see DESIGN.md §7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum UnseenContext {
    /// Fall back to the outcome's marginal distribution (default: an event
    /// in an unseen context is as anomalous as it is unconditionally).
    #[default]
    Marginal,
    /// Assume a uniform distribution (probability `0.5`).
    Uniform,
    /// Treat the event as maximally anomalous (probability `0.0`).
    MaxAnomaly,
}

/// The conditional probability table of one device:
/// `P(S_i^t = s | Ca(S_i^t) = ca)` for every assignment `ca` of the causes.
///
/// Cause assignments are packed into a *context code*: bit `b` of the code
/// is the binary value of the `b`-th cause in [`Cpt::causes`] order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cpt {
    causes: Vec<LaggedVar>,
    /// `table[code] = [count(S=false), count(S=true)]`.
    table: Vec<[u64; 2]>,
    /// Marginal counts `[count(S=false), count(S=true)]` over all snapshots.
    marginal: [u64; 2],
    /// Laplace pseudo-count added to every cell (0 = the paper's plain MLE).
    smoothing: f64,
}

impl Cpt {
    /// Creates an empty CPT for the given (ordered) cause set.
    ///
    /// # Panics
    ///
    /// Panics if there are more than 24 causes (the packed context code
    /// would explode; real interaction degrees are tiny, Section V-D).
    pub fn new(causes: Vec<LaggedVar>, smoothing: f64) -> Self {
        assert!(causes.len() <= 24, "cause set too large for a dense CPT");
        assert!(smoothing >= 0.0, "smoothing must be non-negative");
        let size = 1usize << causes.len();
        Cpt {
            causes,
            table: vec![[0, 0]; size],
            marginal: [0, 0],
            smoothing,
        }
    }

    /// The (ordered) causes this table conditions on.
    pub fn causes(&self) -> &[LaggedVar] {
        &self.causes
    }

    /// Number of context codes (`2^|causes|`).
    pub fn num_contexts(&self) -> usize {
        self.table.len()
    }

    /// Packs cause values (looked up through `value_of`) into a context
    /// code.
    pub fn context_code(&self, mut value_of: impl FnMut(LaggedVar) -> bool) -> usize {
        let mut code = 0usize;
        for (bit, &cause) in self.causes.iter().enumerate() {
            if value_of(cause) {
                code |= 1 << bit;
            }
        }
        code
    }

    /// Records one training observation.
    ///
    /// # Panics
    ///
    /// Panics if `code` is out of range.
    pub fn record(&mut self, code: usize, outcome: bool) {
        self.table[code][outcome as usize] += 1;
        self.marginal[outcome as usize] += 1;
    }

    /// Number of training observations for a context.
    pub fn context_count(&self, code: usize) -> u64 {
        self.table[code][0] + self.table[code][1]
    }

    /// `P(S = outcome | context = code)` under maximum-likelihood
    /// estimation with the configured smoothing, falling back to `unseen`
    /// for contexts with zero training observations.
    ///
    /// # Panics
    ///
    /// Panics if `code` is out of range.
    pub fn prob(&self, code: usize, outcome: bool, unseen: UnseenContext) -> f64 {
        let cell = self.table[code];
        let total = cell[0] + cell[1];
        if total == 0 && self.smoothing == 0.0 {
            return match unseen {
                UnseenContext::Marginal => self.marginal_prob(outcome),
                UnseenContext::Uniform => 0.5,
                UnseenContext::MaxAnomaly => 0.0,
            };
        }
        (cell[outcome as usize] as f64 + self.smoothing) / (total as f64 + 2.0 * self.smoothing)
    }

    /// The marginal `P(S = outcome)` ignoring causes (`0.5` when the table
    /// is completely empty).
    pub fn marginal_prob(&self, outcome: bool) -> f64 {
        let total = self.marginal[0] + self.marginal[1];
        if total == 0 {
            0.5
        } else {
            self.marginal[outcome as usize] as f64 / total as f64
        }
    }

    /// Total number of recorded observations.
    pub fn total_count(&self) -> u64 {
        self.marginal[0] + self.marginal[1]
    }

    /// The raw `[count(S = false), count(S = true)]` cell of a context —
    /// exposed for model persistence.
    ///
    /// # Panics
    ///
    /// Panics if `code` is out of range.
    pub fn counts(&self, code: usize) -> [u64; 2] {
        self.table[code]
    }

    /// The raw marginal counts `[count(false), count(true)]`.
    pub fn marginal_counts(&self) -> [u64; 2] {
        self.marginal
    }

    /// The Laplace pseudo-count in use.
    pub fn smoothing(&self) -> f64 {
        self.smoothing
    }

    /// Restores a context cell from persisted counts (updates the marginal
    /// consistently).
    ///
    /// # Panics
    ///
    /// Panics if `code` is out of range.
    pub fn restore(&mut self, code: usize, counts: [u64; 2]) {
        let old = self.table[code];
        self.marginal[0] = self.marginal[0] - old[0] + counts[0];
        self.marginal[1] = self.marginal[1] - old[1] + counts[1];
        self.table[code] = counts;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iot_model::DeviceId;

    fn lv(d: usize, lag: usize) -> LaggedVar {
        LaggedVar::new(DeviceId::from_index(d), lag)
    }

    #[test]
    fn mle_matches_paper_example() {
        // Paper Section V-B: 100 snapshots with ca = (1, 0), 80 of which
        // have outcome 1 -> P(1|ca) = 0.8.
        let mut cpt = Cpt::new(vec![lv(2, 2), lv(3, 1)], 0.0);
        // ca = (S2=1, S3=0): bit0 = 1, bit1 = 0 -> code 1.
        for i in 0..100 {
            cpt.record(1, i < 80);
        }
        assert!((cpt.prob(1, true, UnseenContext::Marginal) - 0.8).abs() < 1e-12);
        assert!((cpt.prob(1, false, UnseenContext::Marginal) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn context_code_packs_bits_in_cause_order() {
        let cpt = Cpt::new(vec![lv(0, 1), lv(1, 1), lv(2, 2)], 0.0);
        let code = cpt.context_code(|v| v.device.index() != 1);
        // causes 0 and 2 true -> bits 0 and 2 -> 0b101.
        assert_eq!(code, 0b101);
        assert_eq!(cpt.num_contexts(), 8);
    }

    #[test]
    fn unseen_context_policies() {
        let mut cpt = Cpt::new(vec![lv(0, 1)], 0.0);
        // Only context 0 observed: 3 on, 1 off.
        cpt.record(0, true);
        cpt.record(0, true);
        cpt.record(0, true);
        cpt.record(0, false);
        // Context 1 unseen.
        assert_eq!(cpt.prob(1, true, UnseenContext::Uniform), 0.5);
        assert_eq!(cpt.prob(1, true, UnseenContext::MaxAnomaly), 0.0);
        assert!((cpt.prob(1, true, UnseenContext::Marginal) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn smoothing_pulls_toward_half() {
        let mut cpt = Cpt::new(vec![], 1.0);
        cpt.record(0, true); // 1 observation, plus pseudo-counts.
        let p = cpt.prob(0, true, UnseenContext::Marginal);
        assert!((p - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_cause_set_is_a_prior() {
        let mut cpt = Cpt::new(vec![], 0.0);
        assert_eq!(cpt.num_contexts(), 1);
        cpt.record(0, true);
        cpt.record(0, false);
        assert_eq!(cpt.prob(0, true, UnseenContext::Marginal), 0.5);
        assert_eq!(cpt.total_count(), 2);
    }

    #[test]
    fn marginal_of_empty_table() {
        let cpt = Cpt::new(vec![lv(0, 1)], 0.0);
        assert_eq!(cpt.marginal_prob(true), 0.5);
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn rejects_huge_cause_sets() {
        Cpt::new((0..25).map(|d| lv(d, 1)).collect(), 0.0);
    }
}
