//! Time-lagged device-state variables.

use std::fmt;

use iot_model::DeviceId;
use serde::{Deserialize, Serialize};

/// A time-lagged device state `S_k^{t-lag}` — one node of the DIG.
///
/// Causes always have `lag >= 1`: the paper exploits the temporal knowledge
/// that a cause precedes its effect, which is how TemporalPC orients every
/// edge for free (Section V-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LaggedVar {
    /// The device whose state this variable refers to.
    pub device: DeviceId,
    /// How many timestamps in the past (`1..=τ` for causes).
    pub lag: usize,
}

impl LaggedVar {
    /// Creates a lagged variable.
    pub fn new(device: DeviceId, lag: usize) -> Self {
        LaggedVar { device, lag }
    }

    /// Enumerates every candidate cause for an outcome at the present
    /// timestamp: all devices at all lags `1..=tau` — the fully-connected
    /// starting point of TemporalPC (Algorithm 1, line 5).
    pub fn all_candidates(num_devices: usize, tau: usize) -> Vec<LaggedVar> {
        let mut vars = Vec::with_capacity(num_devices * tau);
        for lag in 1..=tau {
            for device in 0..num_devices {
                vars.push(LaggedVar::new(DeviceId::from_index(device), lag));
            }
        }
        vars
    }
}

impl fmt::Display for LaggedVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S[{}]^(t-{})", self.device.index(), self.lag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidate_enumeration_covers_all_lags() {
        let vars = LaggedVar::all_candidates(3, 2);
        assert_eq!(vars.len(), 6);
        assert!(vars.iter().all(|v| v.lag >= 1 && v.lag <= 2));
        assert!(vars.iter().any(|v| v.device.index() == 2 && v.lag == 2));
        // No duplicates.
        let set: std::collections::HashSet<_> = vars.iter().collect();
        assert_eq!(set.len(), 6);
    }

    #[test]
    fn zero_tau_yields_no_candidates() {
        assert!(LaggedVar::all_candidates(5, 0).is_empty());
    }

    #[test]
    fn display_shows_lag() {
        let v = LaggedVar::new(DeviceId::from_index(3), 2);
        assert_eq!(v.to_string(), "S[3]^(t-2)");
    }
}
