//! Ingestion hardening: the guard layer between the world's event feeds
//! and the monitors.
//!
//! The paper's Event Preprocessor assumes a clean, time-ordered stream.
//! Real smart-home feeds are not: gateways deliver events out of order,
//! devices report NaN readings, clocks jump backwards, a stuck firmware
//! re-reports the same state in a tight loop, and sensors silently die.
//! [`IngestGuard`] sits in front of [`crate::pipeline::Monitor::observe_raw`]
//! (and, via `iot-serve`, in front of every home's monitor on the shard)
//! and repairs what can be repaired while recording what cannot:
//!
//! * **Ordering repair** — a bounded reordering buffer holds events for up
//!   to [`IngestPolicy::reorder_window`]; a watermark trails the maximum
//!   timestamp seen by that window, and buffered events are released in
//!   timestamp order once the watermark passes them. An in-order stream
//!   comes out bit-identical to its input.
//! * **Dead letters** — events that cannot be scored are never dropped
//!   silently: they are returned as [`DeadLetter`] records with a
//!   structured [`DropReason`] cause (`NonFinite`, `ClockRegression`,
//!   `LateArrival`, `UnknownDevice`, `DuplicateFlood`) and counted in
//!   [`DeadLetterCounts`] and the `ingest.*` telemetry instruments.
//! * **Sensor-dropout detection** — a per-device liveness clock
//!   ([`IngestPolicy::liveness_timeout`], typically derived from the
//!   fitted mean inter-event gap) flags devices that have gone silent;
//!   the resulting [`StaleSet`] drives the monitors' *degraded mode*,
//!   where verdicts carry a [`crate::Verdict::confidence`] discounting
//!   CPT entries conditioned on stale parents.
//!
//! [`GuardedMonitor`] bundles a guard with an [`OwnedMonitor`] for the
//! common single-stream case; the `iot-serve` hub wires a per-home guard
//! into its shards when [`HubConfig::ingest`] is set.
//!
//! [`HubConfig::ingest`]: ../../iot_serve/struct.HubConfig.html

use std::time::Duration;

use iot_model::{BinaryEvent, DeviceEvent, DeviceId, StateValue, Timestamp};
use iot_telemetry::{Counter, Gauge, TelemetryHandle};

use crate::error::ConfigError;
use crate::monitor::Verdict;
use crate::pipeline::{DropReason, FittedModel, OwnedMonitor};

/// Configuration of the ingestion guard.
///
/// All knobs are durations (or counts), so the policy is `Eq` and can sit
/// inside `iot-serve`'s `HubConfig`. Construct with a struct literal over
/// [`IngestPolicy::default`] and adjust the knobs you care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestPolicy {
    /// How long an event may be held for reordering. The guard's
    /// watermark trails the maximum timestamp seen by this much; events
    /// older than the watermark on arrival are too late to reinsert and
    /// become dead letters. `0` disables reordering (every event is
    /// released immediately and any regression is late).
    pub reorder_window: Duration,
    /// How far behind the watermark a timestamp may lie before the guard
    /// classifies it as a clock fault ([`DropReason::ClockRegression`])
    /// rather than network-induced lateness ([`DropReason::LateArrival`]).
    pub max_skew: Duration,
    /// The per-device liveness clock: a device not heard from for this
    /// long (in stream time, measured against the watermark's source —
    /// the maximum timestamp seen) is flagged stale, switching the
    /// monitor into degraded mode. `None` disables dropout detection.
    pub liveness_timeout: Option<Duration>,
    /// Maximum run of consecutive identical readings a device may report
    /// before further repeats become [`DropReason::DuplicateFlood`] dead
    /// letters. `0` disables flood protection.
    pub duplicate_flood_limit: u32,
}

impl Default for IngestPolicy {
    fn default() -> Self {
        IngestPolicy {
            reorder_window: Duration::from_secs(30),
            max_skew: Duration::from_secs(300),
            liveness_timeout: None,
            duplicate_flood_limit: 0,
        }
    }
}

impl IngestPolicy {
    /// Validates the policy, naming the offending parameter on error.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] if `liveness_timeout` is `Some(0)` (a zero timeout
    /// would flag every device stale on its first quiet millisecond).
    pub fn check(&self) -> Result<(), ConfigError> {
        if self.liveness_timeout == Some(Duration::ZERO) {
            return Err(ConfigError::new(
                "liveness_timeout",
                "must be positive when set (use None to disable dropout detection)",
            ));
        }
        Ok(())
    }

    /// Sets the liveness timeout from a fitted mean inter-event gap (see
    /// [`iot_model::EventLog::mean_inter_event_gap_secs`]), scaled by
    /// `factor` — a device is flagged stale after `factor` mean gaps of
    /// silence. Non-finite or non-positive inputs disable detection.
    #[must_use]
    pub fn with_liveness_from_mean_gap(mut self, mean_gap_secs: f64, factor: f64) -> Self {
        let timeout = mean_gap_secs * factor;
        self.liveness_timeout =
            (timeout.is_finite() && timeout > 0.0).then(|| Duration::from_secs_f64(timeout));
        self
    }
}

/// An event the ingestion guard can validate, buffer, and reorder.
///
/// Implemented for raw [`DeviceEvent`]s (the `observe_raw` path) and for
/// preprocessed [`BinaryEvent`]s (the `iot-serve` hub path).
pub trait IngestEvent: Copy {
    /// The event's timestamp.
    fn time(&self) -> Timestamp;
    /// The reporting device.
    fn device(&self) -> DeviceId;
    /// Whether the reading is NaN or infinite (never true for binary
    /// events).
    fn is_non_finite(&self) -> bool;
    /// Whether this event repeats `prev`'s reading (the duplicate-flood
    /// check; timestamps are ignored).
    fn same_reading(&self, prev: &Self) -> bool;
}

impl IngestEvent for DeviceEvent {
    fn time(&self) -> Timestamp {
        self.time
    }

    fn device(&self) -> DeviceId {
        self.device
    }

    fn is_non_finite(&self) -> bool {
        matches!(self.value, StateValue::Numeric(v) if !v.is_finite())
    }

    fn same_reading(&self, prev: &Self) -> bool {
        self.value.is_duplicate_of(prev.value, 1e-9)
    }
}

impl IngestEvent for BinaryEvent {
    fn time(&self) -> Timestamp {
        self.time
    }

    fn device(&self) -> DeviceId {
        self.device
    }

    fn is_non_finite(&self) -> bool {
        false
    }

    fn same_reading(&self, prev: &Self) -> bool {
        self.value == prev.value
    }
}

/// An event the guard refused to forward, with its structured cause.
///
/// Dead letters are the guard's audit trail: nothing is dropped silently,
/// so an operator can replay or inspect exactly what the pipeline did not
/// score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeadLetter<E> {
    /// The refused event, unmodified.
    pub event: E,
    /// Why it was refused.
    pub cause: DropReason,
}

/// Dead letters by cause — the per-home counts surfaced through
/// `iot-serve`'s `HomeReport` and the `ingest.drop.*` counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeadLetterCounts {
    /// NaN or infinite numeric readings.
    pub non_finite: u64,
    /// Timestamps that regressed beyond `max_skew`.
    pub clock_regression: u64,
    /// Events that arrived after the reorder watermark passed them.
    pub late_arrival: u64,
    /// Events naming devices outside the fitted model.
    pub unknown_device: u64,
    /// Identical readings beyond the duplicate-flood limit.
    pub duplicate_flood: u64,
}

impl DeadLetterCounts {
    /// Total dead letters across all causes.
    pub fn total(&self) -> u64 {
        self.non_finite
            + self.clock_regression
            + self.late_arrival
            + self.unknown_device
            + self.duplicate_flood
    }

    fn record(&mut self, cause: DropReason) {
        match cause {
            DropReason::NonFinite => self.non_finite += 1,
            DropReason::ClockRegression => self.clock_regression += 1,
            DropReason::LateArrival => self.late_arrival += 1,
            DropReason::UnknownDevice => self.unknown_device += 1,
            DropReason::DuplicateFlood => self.duplicate_flood += 1,
            // The preprocessing reasons are counted by the monitor itself.
            DropReason::Duplicate | DropReason::Extreme => {}
        }
    }
}

/// The set of devices currently flagged stale by the liveness clock.
///
/// Passed to the monitors' `observe_degraded` entry points, which discount
/// verdict [`confidence`](crate::Verdict::confidence) for CPT entries
/// conditioned on stale parents. An empty set makes degraded mode a no-op.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StaleSet {
    flags: Vec<bool>,
    count: usize,
}

impl StaleSet {
    /// An all-live set over `num_devices` devices.
    pub fn all_live(num_devices: usize) -> Self {
        StaleSet {
            flags: vec![false; num_devices],
            count: 0,
        }
    }

    /// Flags `device` as stale.
    pub fn mark(&mut self, device: DeviceId) {
        if let Some(flag) = self.flags.get_mut(device.index()) {
            if !*flag {
                *flag = true;
                self.count += 1;
            }
        }
    }

    /// Whether `device` is flagged stale (out-of-range devices are not).
    pub fn is_stale(&self, device: DeviceId) -> bool {
        self.flags.get(device.index()).copied().unwrap_or(false)
    }

    /// Number of stale devices.
    pub fn count(&self) -> usize {
        self.count
    }
}

/// What [`IngestGuard::offer`] did with one arriving event.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestStep<E> {
    /// Events released from the reordering buffer in timestamp order
    /// (possibly including the offered event itself), ready to score.
    pub ready: Vec<E>,
    /// The offered event's dead letter, if it was refused.
    pub dead: Option<DeadLetter<E>>,
}

impl<E> IngestStep<E> {
    fn accepted(ready: Vec<E>) -> Self {
        IngestStep { ready, dead: None }
    }

    fn refused(event: E, cause: DropReason) -> Self {
        IngestStep {
            ready: Vec::new(),
            dead: Some(DeadLetter { event, cause }),
        }
    }
}

/// Resolved-once `ingest.*` instruments; disabled handles cost one branch.
#[derive(Debug, Clone, Default)]
struct IngestInstruments {
    enabled: bool,
    non_finite: Counter,
    clock_regression: Counter,
    late_arrival: Counter,
    unknown_device: Counter,
    duplicate_flood: Counter,
    dead_letters: Gauge,
    stale_devices: Gauge,
}

impl IngestInstruments {
    fn from_handle(telemetry: &TelemetryHandle) -> Self {
        IngestInstruments {
            enabled: telemetry.enabled(),
            non_finite: telemetry.counter("ingest.drop.non_finite"),
            clock_regression: telemetry.counter("ingest.drop.clock_regression"),
            late_arrival: telemetry.counter("ingest.drop.late_arrival"),
            unknown_device: telemetry.counter("ingest.drop.unknown_device"),
            duplicate_flood: telemetry.counter("ingest.drop.duplicate_flood"),
            dead_letters: telemetry.gauge("ingest.dead_letters"),
            stale_devices: telemetry.gauge("ingest.stale_devices"),
        }
    }

    fn record(&self, cause: DropReason, total: u64) {
        if !self.enabled {
            return;
        }
        match cause {
            DropReason::NonFinite => self.non_finite.inc(),
            DropReason::ClockRegression => self.clock_regression.inc(),
            DropReason::LateArrival => self.late_arrival.inc(),
            DropReason::UnknownDevice => self.unknown_device.inc(),
            DropReason::DuplicateFlood => self.duplicate_flood.inc(),
            DropReason::Duplicate | DropReason::Extreme => {}
        }
        self.dead_letters.set(total);
    }
}

/// The ingestion guard: validation, bounded reordering, dead-letter
/// accounting, and the liveness clock, in front of a monitor.
///
/// Feed arriving events with [`offer`](Self::offer); score everything in
/// the returned [`IngestStep::ready`] (in order), and log or persist
/// [`IngestStep::dead`]. At end of stream (or shutdown), [`flush`]
/// releases whatever the reordering buffer still holds.
///
/// On a clean, in-order stream the guard is a pure delay line: the
/// concatenation of every `ready` batch plus the final [`flush`] is the
/// input stream, unchanged — so verdicts are bit-identical to an unguarded
/// run.
///
/// [`flush`]: Self::flush
#[derive(Debug, Clone)]
pub struct IngestGuard<E: IngestEvent> {
    policy: IngestPolicy,
    window_ms: u64,
    max_skew_ms: u64,
    liveness_ms: Option<u64>,
    num_devices: usize,
    /// Reordering buffer, sorted ascending by timestamp; ties keep
    /// arrival order.
    buffer: Vec<E>,
    /// Maximum timestamp accepted so far, in milliseconds.
    max_seen_ms: Option<u64>,
    /// First timestamp accepted, for never-heard liveness accounting.
    first_seen_ms: Option<u64>,
    /// Per-device last accepted timestamp (ms).
    last_seen_ms: Vec<Option<u64>>,
    /// Per-device previous reading and current run length, for the
    /// duplicate-flood check.
    last_reading: Vec<Option<(E, u32)>>,
    counts: DeadLetterCounts,
    instruments: IngestInstruments,
}

impl<E: IngestEvent> IngestGuard<E> {
    /// Creates a guard for a model covering `num_devices` devices.
    pub fn new(policy: IngestPolicy, num_devices: usize) -> Self {
        IngestGuard {
            window_ms: duration_ms(policy.reorder_window),
            max_skew_ms: duration_ms(policy.max_skew),
            liveness_ms: policy.liveness_timeout.map(duration_ms),
            policy,
            num_devices,
            buffer: Vec::new(),
            max_seen_ms: None,
            first_seen_ms: None,
            last_seen_ms: vec![None; num_devices],
            last_reading: vec![None; num_devices],
            counts: DeadLetterCounts::default(),
            instruments: IngestInstruments::default(),
        }
    }

    /// Attaches the `ingest.*` telemetry instruments.
    pub fn set_telemetry(&mut self, telemetry: &TelemetryHandle) {
        self.instruments = IngestInstruments::from_handle(telemetry);
    }

    /// The policy in force.
    pub fn policy(&self) -> &IngestPolicy {
        &self.policy
    }

    /// Dead letters by cause so far.
    pub fn counts(&self) -> DeadLetterCounts {
        self.counts
    }

    /// Events currently held in the reordering buffer.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Validates one arriving event and advances the watermark.
    ///
    /// Returns the events released from the reordering buffer (in
    /// timestamp order) and, if the offered event was refused, its dead
    /// letter — exactly one of `ready` containing the event eventually or
    /// `dead` describing why it never will.
    pub fn offer(&mut self, event: E) -> IngestStep<E> {
        if event.device().index() >= self.num_devices {
            return self.refuse(event, DropReason::UnknownDevice);
        }
        if event.is_non_finite() {
            return self.refuse(event, DropReason::NonFinite);
        }
        if let Some(step) = self.flood_check(event) {
            return step;
        }
        let t = event.time().as_millis();
        if let Some(max_seen) = self.max_seen_ms {
            let watermark = max_seen.saturating_sub(self.window_ms);
            if t < watermark {
                let lateness = watermark - t;
                let cause = if lateness > self.max_skew_ms {
                    DropReason::ClockRegression
                } else {
                    DropReason::LateArrival
                };
                return self.refuse(event, cause);
            }
        }
        self.accept(event, t);
        let watermark = self
            .max_seen_ms
            .expect("accept records max_seen")
            .saturating_sub(self.window_ms);
        let release = self
            .buffer
            .partition_point(|e| e.time().as_millis() <= watermark);
        IngestStep::accepted(self.buffer.drain(..release).collect())
    }

    /// Releases every buffered event in timestamp order (end of stream or
    /// shutdown). The guard stays usable; its watermark is unchanged.
    pub fn flush(&mut self) -> Vec<E> {
        std::mem::take(&mut self.buffer)
    }

    /// The devices currently flagged stale by the liveness clock: not
    /// heard from (in accepted-event stream time) for longer than
    /// [`IngestPolicy::liveness_timeout`]. Empty when detection is
    /// disabled or the stream has not yet spanned a full timeout.
    pub fn stale_set(&self) -> StaleSet {
        let mut stale = StaleSet::all_live(self.num_devices);
        let (Some(liveness), Some(now)) = (self.liveness_ms, self.max_seen_ms) else {
            self.gauge_stale(0);
            return stale;
        };
        for index in 0..self.num_devices {
            // A never-heard device ages from the first accepted event.
            let last = self.last_seen_ms[index].or(self.first_seen_ms);
            if let Some(last) = last {
                if now.saturating_sub(last) > liveness {
                    stale.mark(DeviceId::from_index(index));
                }
            }
        }
        self.gauge_stale(stale.count() as u64);
        stale
    }

    fn gauge_stale(&self, count: u64) {
        if self.instruments.enabled {
            self.instruments.stale_devices.set(count);
        }
    }

    fn refuse(&mut self, event: E, cause: DropReason) -> IngestStep<E> {
        self.counts.record(cause);
        self.instruments.record(cause, self.counts.total());
        IngestStep::refused(event, cause)
    }

    /// Updates the per-device duplicate run; returns the dead-letter step
    /// when the run exceeds the flood limit.
    fn flood_check(&mut self, event: E) -> Option<IngestStep<E>> {
        let limit = self.policy.duplicate_flood_limit;
        let slot = &mut self.last_reading[event.device().index()];
        let run = match slot {
            Some((prev, run)) if event.same_reading(prev) => *run + 1,
            _ => 1,
        };
        *slot = Some((event, run));
        (limit > 0 && run > limit).then(|| self.refuse(event, DropReason::DuplicateFlood))
    }

    fn accept(&mut self, event: E, t: u64) {
        // Insert after any buffered event with the same or earlier
        // timestamp, so ties keep arrival order.
        let at = self.buffer.partition_point(|e| e.time().as_millis() <= t);
        self.buffer.insert(at, event);
        self.max_seen_ms = Some(self.max_seen_ms.map_or(t, |m| m.max(t)));
        self.first_seen_ms.get_or_insert(t);
        let last = &mut self.last_seen_ms[event.device().index()];
        *last = Some(last.map_or(t, |l| l.max(t)));
    }
}

fn duration_ms(d: Duration) -> u64 {
    u64::try_from(d.as_millis()).unwrap_or(u64::MAX)
}

/// An [`OwnedMonitor`] behind an [`IngestGuard`]: the one-stop hardened
/// ingestion path for a single raw stream.
///
/// Created with [`FittedModel::guarded_monitor`]. [`offer`](Self::offer)
/// runs the guard, then scores every released event in degraded mode
/// against the current [`StaleSet`] (a no-op when nothing is stale);
/// refused events accumulate as [`dead_letters`](Self::dead_letters).
#[derive(Debug, Clone)]
pub struct GuardedMonitor {
    guard: IngestGuard<DeviceEvent>,
    monitor: OwnedMonitor,
    dead: Vec<DeadLetter<DeviceEvent>>,
}

impl GuardedMonitor {
    pub(crate) fn new(guard: IngestGuard<DeviceEvent>, monitor: OwnedMonitor) -> Self {
        GuardedMonitor {
            guard,
            monitor,
            dead: Vec::new(),
        }
    }

    /// Feeds one raw event through the guard and scores whatever it
    /// releases, in order. Each released event yields `Ok(Verdict)` or
    /// `Err` with the preprocessing [`DropReason`] (duplicate / extreme),
    /// exactly as [`OwnedMonitor::observe_raw`] would.
    pub fn offer(&mut self, event: DeviceEvent) -> Vec<Result<Verdict, DropReason>> {
        let step = self.guard.offer(event);
        if let Some(dead) = step.dead {
            self.dead.push(dead);
        }
        self.score(step.ready)
    }

    /// Flushes the reordering buffer at end of stream and scores the
    /// remaining events.
    pub fn finish(&mut self) -> Vec<Result<Verdict, DropReason>> {
        let remaining = self.guard.flush();
        self.score(remaining)
    }

    fn score(&mut self, ready: Vec<DeviceEvent>) -> Vec<Result<Verdict, DropReason>> {
        if ready.is_empty() {
            return Vec::new();
        }
        let stale = self.guard.stale_set();
        ready
            .into_iter()
            .map(|event| self.monitor.observe_raw_degraded(&event, &stale))
            .collect()
    }

    /// Every dead letter so far, oldest first.
    pub fn dead_letters(&self) -> &[DeadLetter<DeviceEvent>] {
        &self.dead
    }

    /// Dead letters by cause.
    pub fn counts(&self) -> DeadLetterCounts {
        self.guard.counts()
    }

    /// Devices currently flagged stale by the liveness clock.
    pub fn stale_devices(&self) -> usize {
        self.guard.stale_set().count()
    }

    /// The underlying monitor (for reports and state inspection).
    pub fn monitor(&self) -> &OwnedMonitor {
        &self.monitor
    }

    /// Consumes the wrapper, returning the underlying monitor.
    pub fn into_monitor(self) -> OwnedMonitor {
        self.monitor
    }
}

impl FittedModel {
    /// Spawns a [`GuardedMonitor`]: an owned monitor behind an ingestion
    /// guard configured by `policy`, sharing the model's telemetry.
    pub fn guarded_monitor(&self, policy: IngestPolicy) -> GuardedMonitor {
        let mut guard = IngestGuard::new(policy, self.num_devices());
        guard.set_telemetry(self.telemetry());
        GuardedMonitor::new(guard, self.clone().into_monitor())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bin(t_ms: u64, dev: usize, on: bool) -> BinaryEvent {
        BinaryEvent::new(Timestamp::from_millis(t_ms), DeviceId::from_index(dev), on)
    }

    fn raw(t_ms: u64, dev: usize, v: f64) -> DeviceEvent {
        DeviceEvent::new(
            Timestamp::from_millis(t_ms),
            DeviceId::from_index(dev),
            StateValue::Numeric(v),
        )
    }

    fn policy(window_ms: u64, skew_ms: u64) -> IngestPolicy {
        IngestPolicy {
            reorder_window: Duration::from_millis(window_ms),
            max_skew: Duration::from_millis(skew_ms),
            ..IngestPolicy::default()
        }
    }

    fn drain(guard: &mut IngestGuard<BinaryEvent>, events: &[BinaryEvent]) -> Vec<BinaryEvent> {
        let mut out = Vec::new();
        for &e in events {
            out.extend(guard.offer(e).ready);
        }
        out.extend(guard.flush());
        out
    }

    #[test]
    fn in_order_stream_passes_through_unchanged() {
        let events: Vec<_> = (0..50)
            .map(|i| bin(i * 1_000, (i % 3) as usize, i % 2 == 0))
            .collect();
        let mut guard = IngestGuard::new(policy(5_000, 60_000), 3);
        assert_eq!(drain(&mut guard, &events), events);
        assert_eq!(guard.counts().total(), 0);
    }

    #[test]
    fn out_of_order_within_window_is_repaired() {
        let mut events: Vec<_> = (0..20u64).map(|i| bin(i * 1_000, 0, i % 2 == 0)).collect();
        let sorted = events.clone();
        events.swap(7, 8);
        events.swap(13, 15);
        let mut guard = IngestGuard::new(policy(5_000, 60_000), 1);
        assert_eq!(drain(&mut guard, &events), sorted);
        assert_eq!(guard.counts().total(), 0);
    }

    #[test]
    fn late_event_becomes_a_dead_letter_not_a_reorder() {
        let mut guard = IngestGuard::new(policy(1_000, 60_000), 1);
        guard.offer(bin(0, 0, true));
        guard.offer(bin(10_000, 0, false));
        // Watermark is now 9 000 ms; an event at 5 000 ms is late but
        // within max_skew.
        let step = guard.offer(bin(5_000, 0, true));
        assert!(step.ready.is_empty());
        assert_eq!(step.dead.unwrap().cause, DropReason::LateArrival);
        assert_eq!(guard.counts().late_arrival, 1);
    }

    #[test]
    fn deep_regression_is_a_clock_fault() {
        let mut guard = IngestGuard::new(policy(1_000, 2_000), 1);
        guard.offer(bin(100_000, 0, true));
        let step = guard.offer(bin(10, 0, false));
        assert_eq!(step.dead.unwrap().cause, DropReason::ClockRegression);
        assert_eq!(guard.counts().clock_regression, 1);
    }

    #[test]
    fn unknown_device_and_non_finite_are_refused() {
        let mut guard: IngestGuard<DeviceEvent> = IngestGuard::new(policy(0, 0), 2);
        let step = guard.offer(raw(0, 5, 1.0));
        assert_eq!(step.dead.unwrap().cause, DropReason::UnknownDevice);
        let step = guard.offer(raw(0, 1, f64::NAN));
        assert_eq!(step.dead.unwrap().cause, DropReason::NonFinite);
        let step = guard.offer(raw(0, 1, f64::INFINITY));
        assert_eq!(step.dead.unwrap().cause, DropReason::NonFinite);
        assert_eq!(guard.counts().unknown_device, 1);
        assert_eq!(guard.counts().non_finite, 2);
        assert_eq!(guard.counts().total(), 3);
    }

    #[test]
    fn duplicate_flood_trips_after_the_limit() {
        let mut guard: IngestGuard<BinaryEvent> = IngestGuard::new(
            IngestPolicy {
                duplicate_flood_limit: 3,
                ..policy(0, 0)
            },
            1,
        );
        // Three identical reports pass; the fourth (run 4 > limit 3) and
        // everything after it are flood dead letters until the value flips.
        for i in 0..3 {
            assert!(guard.offer(bin(i * 10, 0, true)).dead.is_none(), "run {i}");
        }
        let step = guard.offer(bin(30, 0, true));
        assert_eq!(step.dead.unwrap().cause, DropReason::DuplicateFlood);
        assert_eq!(
            guard.offer(bin(40, 0, true)).dead.unwrap().cause,
            DropReason::DuplicateFlood
        );
        assert!(
            guard.offer(bin(50, 0, false)).dead.is_none(),
            "flip resets the run"
        );
        assert_eq!(guard.counts().duplicate_flood, 2);
    }

    #[test]
    fn liveness_clock_flags_silent_devices() {
        let mut guard: IngestGuard<BinaryEvent> = IngestGuard::new(
            IngestPolicy {
                liveness_timeout: Some(Duration::from_secs(10)),
                ..policy(0, 60_000)
            },
            3,
        );
        guard.offer(bin(0, 0, true));
        guard.offer(bin(1_000, 1, true));
        assert_eq!(guard.stale_set().count(), 0);
        // Device 1 and the never-heard device 2 go silent past the
        // timeout; device 0 keeps reporting.
        guard.offer(bin(11_500, 0, false));
        guard.offer(bin(12_000, 0, true));
        let stale = guard.stale_set();
        assert!(!stale.is_stale(DeviceId::from_index(0)));
        assert!(stale.is_stale(DeviceId::from_index(1)));
        assert!(
            stale.is_stale(DeviceId::from_index(2)),
            "never-heard device ages too"
        );
        assert_eq!(stale.count(), 2);
    }

    #[test]
    fn liveness_disabled_flags_nothing() {
        let mut guard: IngestGuard<BinaryEvent> = IngestGuard::new(policy(0, 0), 2);
        guard.offer(bin(0, 0, true));
        guard.offer(bin(1_000_000, 0, false));
        assert_eq!(guard.stale_set().count(), 0);
    }

    #[test]
    fn zero_liveness_timeout_is_rejected_by_check() {
        let bad = IngestPolicy {
            liveness_timeout: Some(Duration::ZERO),
            ..IngestPolicy::default()
        };
        let err = bad.check().unwrap_err();
        assert!(err.to_string().contains("liveness_timeout"), "{err}");
        assert!(IngestPolicy::default().check().is_ok());
    }

    #[test]
    fn mean_gap_helper_scales_and_guards_degenerate_inputs() {
        let p = IngestPolicy::default().with_liveness_from_mean_gap(2.5, 4.0);
        assert_eq!(p.liveness_timeout, Some(Duration::from_secs(10)));
        assert_eq!(
            IngestPolicy::default()
                .with_liveness_from_mean_gap(0.0, 4.0)
                .liveness_timeout,
            None
        );
        assert_eq!(
            IngestPolicy::default()
                .with_liveness_from_mean_gap(f64::NAN, 4.0)
                .liveness_timeout,
            None
        );
    }

    #[test]
    fn equal_timestamps_keep_arrival_order() {
        let events = [
            bin(1_000, 0, true),
            bin(1_000, 1, true),
            bin(1_000, 2, true),
        ];
        let mut guard = IngestGuard::new(policy(5_000, 60_000), 3);
        assert_eq!(drain(&mut guard, &events), events);
    }

    #[test]
    fn stale_set_marks_are_idempotent() {
        let mut stale = StaleSet::all_live(3);
        stale.mark(DeviceId::from_index(1));
        stale.mark(DeviceId::from_index(1));
        assert_eq!(stale.count(), 1);
        assert!(stale.is_stale(DeviceId::from_index(1)));
        assert!(
            !stale.is_stale(DeviceId::from_index(9)),
            "out of range is live"
        );
    }
}
