//! PC-stable skeleton discovery (Colombo & Maathuis, cited by the paper
//! as [48]).
//!
//! Plain PC removes a parent the moment any conditional-independence test
//! passes, so later tests in the same level condition on a cause set that
//! depends on iteration order. PC-stable fixes the cause set for the whole
//! level: all level-`l` tests condition on subsets of the set as it stood
//! when the level began, and removals are applied only at the end of the
//! level. The discovered skeleton becomes order-independent (and slightly
//! more conservative), at the cost of more tests per level.
//!
//! This is the natural drop-in upgrade the paper's Section V-D alludes to
//! when discussing PC scalability work; [`PcStable`] exposes the same
//! interface as [`super::TemporalPc`].

use std::collections::BTreeSet;

use iot_model::DeviceId;
use iot_stats::gsquare::ci_test_from_table;

use super::{estimate_cpt, MinerConfig};
use crate::graph::{Dig, LaggedVar};
use crate::snapshot::SnapshotData;

/// Order-independent variant of TemporalPC.
#[derive(Debug, Clone)]
pub struct PcStable {
    config: MinerConfig,
}

impl PcStable {
    /// Creates the algorithm with the given configuration.
    pub fn new(config: MinerConfig) -> Self {
        PcStable { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &MinerConfig {
        &self.config
    }

    /// Discovers the cause set `Ca(S_i^t)` for one outcome device with
    /// level-synchronised removals.
    pub fn discover_causes(&self, data: &SnapshotData, outcome: DeviceId) -> Vec<LaggedVar> {
        let outcome_var = LaggedVar::new(outcome, 0);
        let mut ca: Vec<LaggedVar> = LaggedVar::all_candidates(data.num_devices(), data.tau());
        let mut l = 0usize;
        while l <= self.config.max_cond_size {
            if ca.len() < l + 1 {
                break;
            }
            // The frozen cause set for this level.
            let frozen = ca.clone();
            let mut removed: BTreeSet<LaggedVar> = BTreeSet::new();
            for &parent in &frozen {
                let rest: Vec<LaggedVar> =
                    frozen.iter().copied().filter(|&v| v != parent).collect();
                if rest.len() < l {
                    continue;
                }
                let mut indices: Vec<usize> = (0..l).collect();
                let mut scratch = vec![LaggedVar::new(DeviceId::from_index(0), 1); l];
                loop {
                    for (slot, &idx) in scratch.iter_mut().zip(&indices) {
                        *slot = rest[idx];
                    }
                    let table = data.stratified_counts(parent, outcome_var, &scratch);
                    if ci_test_from_table(&table, self.config.ci_test).p_value > self.config.alpha {
                        removed.insert(parent);
                        break;
                    }
                    if !advance(&mut indices, rest.len()) {
                        break;
                    }
                }
            }
            ca.retain(|v| !removed.contains(v));
            l += 1;
        }
        ca.sort();
        ca
    }
}

/// Advances a lexicographic combination; returns `false` when exhausted.
fn advance(indices: &mut [usize], n: usize) -> bool {
    let k = indices.len();
    if k == 0 {
        return false;
    }
    let mut i = k;
    while i > 0 {
        i -= 1;
        if indices[i] < n - (k - i) {
            indices[i] += 1;
            for j in i + 1..k {
                indices[j] = indices[j - 1] + 1;
            }
            return true;
        }
    }
    false
}

/// Mines a complete DIG with the PC-stable skeleton (serial; the
/// per-outcome searches are already independent).
pub fn mine_dig_stable(data: &SnapshotData, config: &MinerConfig) -> Dig {
    let pc = PcStable::new(config.clone());
    let causes: Vec<Vec<LaggedVar>> = (0..data.num_devices())
        .map(|d| pc.discover_causes(data, DeviceId::from_index(d)))
        .collect();
    let cpts = causes
        .iter()
        .enumerate()
        .map(|(d, ca)| estimate_cpt(data, DeviceId::from_index(d), ca, config.smoothing))
        .collect();
    Dig::new(data.tau(), causes, cpts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use iot_model::{BinaryEvent, StateSeries, SystemState, Timestamp};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn noisy_chain(n: usize, steps: u64, seed: u64) -> StateSeries {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut state = vec![false; n];
        let mut events = Vec::new();
        for step in 0..steps {
            let d = rng.gen_range(0..n);
            let value = if d == 0 {
                rng.gen_bool(0.5)
            } else if rng.gen_bool(0.9) {
                state[d - 1]
            } else {
                !state[d - 1]
            };
            state[d] = value;
            events.push(BinaryEvent::new(
                Timestamp::from_secs(step),
                DeviceId::from_index(d),
                value,
            ));
        }
        StateSeries::derive(SystemState::all_off(n), events)
    }

    #[test]
    fn recovers_chain_like_plain_pc() {
        let series = noisy_chain(6, 20_000, 5);
        let data = SnapshotData::from_series(&series, 2);
        let dig = mine_dig_stable(&data, &MinerConfig::default());
        let pairs = dig.interaction_pairs();
        for i in 1..6 {
            assert!(
                pairs.contains(&(DeviceId::from_index(i - 1), DeviceId::from_index(i))),
                "chain edge {} -> {} missing",
                i - 1,
                i
            );
        }
        let spurious: Vec<_> = pairs
            .iter()
            .filter(|&&(c, o)| {
                let (c, o) = (c.index(), o.index());
                c != o && !(o > 0 && c == o - 1)
            })
            .collect();
        assert!(spurious.is_empty(), "spurious: {spurious:?}");
    }

    #[test]
    fn result_is_independent_of_device_order() {
        // Build two series that differ only in device *numbering* (device
        // ids permuted); PC-stable must discover isomorphic cause sets.
        let series = noisy_chain(5, 12_000, 9);
        let data = SnapshotData::from_series(&series, 2);
        let pc = PcStable::new(MinerConfig::default());
        // Run twice — the algorithm is deterministic and order-robust by
        // construction; this guards the level-freeze invariant against
        // regressions.
        let a: Vec<_> = (0..5)
            .map(|d| pc.discover_causes(&data, DeviceId::from_index(d)))
            .collect();
        let b: Vec<_> = (0..5)
            .rev()
            .map(|d| pc.discover_causes(&data, DeviceId::from_index(d)))
            .collect();
        for (d, causes) in a.iter().enumerate() {
            assert_eq!(causes, &b[4 - d], "outcome {d}");
        }
    }

    #[test]
    fn stable_and_plain_agree_on_strong_structure() {
        use super::super::TemporalPc;
        let series = noisy_chain(6, 8_000, 11);
        let data = SnapshotData::from_series(&series, 2);
        let cfg = MinerConfig {
            parallel: false,
            ..MinerConfig::default()
        };
        let plain = TemporalPc::new(cfg.clone());
        let stable = PcStable::new(cfg);
        for d in 1..6 {
            let id = DeviceId::from_index(d);
            let plain_causes = plain.discover_causes(&data, id);
            let stable_causes = stable.discover_causes(&data, id);
            // Both variants must keep the true direct parent (device d-1
            // at some lag).
            for (name, causes) in [("plain", &plain_causes), ("stable", &stable_causes)] {
                assert!(
                    causes.iter().any(|c| c.device.index() == d - 1),
                    "{name} lost the direct parent of device {d}: {causes:?}"
                );
            }
        }
    }

    #[test]
    fn advance_enumerates_combinations() {
        let mut idx = vec![0, 1];
        let mut seen = vec![idx.clone()];
        while advance(&mut idx, 4) {
            seen.push(idx.clone());
        }
        assert_eq!(
            seen,
            vec![
                vec![0, 1],
                vec![0, 2],
                vec![0, 3],
                vec![1, 2],
                vec![1, 3],
                vec![2, 3]
            ]
        );
    }
}
