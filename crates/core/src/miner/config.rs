//! Miner configuration.

use iot_stats::gsquare::CiTestKind;
use serde::{Deserialize, Serialize};

/// Configuration of the Interaction Miner.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MinerConfig {
    /// Significance threshold α for the G² test (paper default: 0.001 —
    /// "a common practice for stringent conditional independence tests").
    /// An edge is *removed* when the p-value exceeds α.
    pub alpha: f64,
    /// Upper bound on the conditioning-set size `l`. Algorithm 1 grows `l`
    /// until no subsets remain; real interaction degrees are small
    /// (Section V-D), so a cap bounds the worst case without affecting the
    /// discovered graph in practice.
    pub max_cond_size: usize,
    /// Laplace pseudo-count for CPT estimation (0 = the paper's plain
    /// maximum-likelihood estimation).
    pub smoothing: f64,
    /// Mine outcome devices on parallel threads.
    pub parallel: bool,
    /// Which conditional-independence statistic to use (G² is the paper's
    /// choice; Pearson's χ² is the classical alternative).
    pub ci_test: CiTestKind,
}

impl Default for MinerConfig {
    fn default() -> Self {
        MinerConfig {
            alpha: 0.001,
            max_cond_size: 3,
            smoothing: 0.0,
            parallel: true,
            ci_test: CiTestKind::GSquare,
        }
    }
}

impl MinerConfig {
    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CausalIotError::InvalidConfig`] when α is outside
    /// `(0, 1)` or smoothing is negative.
    pub fn validate(&self) -> Result<(), crate::CausalIotError> {
        self.check().map_err(Into::into)
    }

    /// Like [`MinerConfig::validate`] but reports the fine-grained
    /// [`crate::ConfigError`] used by the builder's fallible
    /// `try_build` path.
    ///
    /// # Errors
    ///
    /// Same conditions as [`MinerConfig::validate`].
    pub fn check(&self) -> Result<(), crate::ConfigError> {
        if !(self.alpha > 0.0 && self.alpha < 1.0) {
            return Err(crate::ConfigError::new(
                "alpha",
                format!("must be in (0, 1), got {}", self.alpha),
            ));
        }
        if self.smoothing < 0.0 {
            return Err(crate::ConfigError::new("smoothing", "must be non-negative"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let cfg = MinerConfig::default();
        assert_eq!(cfg.alpha, 0.001);
        assert_eq!(cfg.smoothing, 0.0);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_alpha() {
        let cfg = MinerConfig {
            alpha: 0.0,
            ..MinerConfig::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = MinerConfig {
            alpha: 1.5,
            ..MinerConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validation_rejects_negative_smoothing() {
        let cfg = MinerConfig {
            smoothing: -1.0,
            ..MinerConfig::default()
        };
        assert!(cfg.validate().is_err());
    }
}
