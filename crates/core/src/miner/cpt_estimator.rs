//! CPT estimation by maximum likelihood (Section V-B, "CPT estimation").
//!
//! For each device state `S_i^t` with causes `Ca(S_i^t)`, the estimate is
//! the empirical conditional frequency over the collected snapshots:
//! `P(s | ca) = #(s, ca) / #(ca)`.

use iot_model::DeviceId;

use crate::graph::{Cpt, LaggedVar};
use crate::snapshot::SnapshotData;

/// Estimates the conditional probability table of one device.
///
/// `causes` must be in the canonical order produced by the miner (the CPT's
/// context-code bit order follows it). `smoothing` is a Laplace
/// pseudo-count (0 = the paper's plain MLE).
///
/// # Panics
///
/// Panics if any cause is out of range for `data`.
pub fn estimate_cpt(
    data: &SnapshotData,
    outcome: DeviceId,
    causes: &[LaggedVar],
    smoothing: f64,
) -> Cpt {
    let mut cpt = Cpt::new(causes.to_vec(), smoothing);
    let outcome_var = LaggedVar::new(outcome, 0);
    for row in 0..data.num_snapshots() {
        let code = cpt.context_code(|cause| data.value(row, cause));
        cpt.record(code, data.value(row, outcome_var));
    }
    cpt
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::UnseenContext;
    use iot_model::{BinaryEvent, StateSeries, SystemState, Timestamp};

    fn bev(t: u64, dev: usize, on: bool) -> BinaryEvent {
        BinaryEvent::new(Timestamp::from_secs(t), DeviceId::from_index(dev), on)
    }

    #[test]
    fn deterministic_copy_yields_extreme_probabilities() {
        // Device 1 copies device 0 with a one-event delay.
        let mut events = Vec::new();
        let mut t = 0;
        for i in 0..200u64 {
            let on = i % 2 == 0;
            events.push(bev(t, 0, on));
            t += 1;
            events.push(bev(t, 1, on));
            t += 1;
        }
        let series = StateSeries::derive(SystemState::all_off(2), events);
        let data = SnapshotData::from_series(&series, 1);
        let cause = LaggedVar::new(DeviceId::from_index(0), 1);
        let cpt = estimate_cpt(&data, DeviceId::from_index(1), &[cause], 0.0);
        // In snapshots taken right after device 1 reported, its state
        // equals device 0's lag-1 state; the conditional should be heavily
        // skewed in both contexts.
        let p_on_given_on = cpt.prob(1, true, UnseenContext::Marginal);
        let p_on_given_off = cpt.prob(0, true, UnseenContext::Marginal);
        assert!(
            p_on_given_on > 0.6,
            "P(on | cause on) = {p_on_given_on} too low"
        );
        assert!(
            p_on_given_off < 0.4,
            "P(on | cause off) = {p_on_given_off} too high"
        );
    }

    #[test]
    fn counts_cover_every_snapshot() {
        let events: Vec<BinaryEvent> = (0..50u64).map(|t| bev(t, 0, t % 2 == 0)).collect();
        let series = StateSeries::derive(SystemState::all_off(1), events);
        let data = SnapshotData::from_series(&series, 1);
        let cpt = estimate_cpt(&data, DeviceId::from_index(0), &[], 0.0);
        assert_eq!(cpt.total_count(), data.num_snapshots() as u64);
    }

    #[test]
    fn empty_cause_set_estimates_marginal() {
        // Device 0 is ON in 1/2 of snapshots (alternating).
        let events: Vec<BinaryEvent> = (0..100u64).map(|t| bev(t, 0, t % 2 == 0)).collect();
        let series = StateSeries::derive(SystemState::all_off(1), events);
        let data = SnapshotData::from_series(&series, 1);
        let cpt = estimate_cpt(&data, DeviceId::from_index(0), &[], 0.0);
        let p = cpt.prob(0, true, UnseenContext::Marginal);
        assert!((p - 0.5).abs() < 0.05, "p = {p}");
    }
}
