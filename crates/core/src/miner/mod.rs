//! The Interaction Miner (Section V-B).
//!
//! Constructs the DIG from graph snapshots in two steps:
//!
//! 1. **Skeleton construction** — [`TemporalPc`] identifies each device's
//!    causes with a PC-style conditional-independence search over the
//!    time-lagged variables; temporal order orients every edge for free.
//! 2. **CPT estimation** — [`estimate_cpt`] fills each device's
//!    conditional probability table by maximum likelihood over the
//!    snapshots.

mod config;
mod cpt_estimator;
mod pc_stable;
mod temporal_pc;

pub use config::MinerConfig;
pub use cpt_estimator::estimate_cpt;
pub use pc_stable::{mine_dig_stable, PcStable};
pub use temporal_pc::{PcStats, Removal, RemovalReason, TemporalPc};

use std::time::Instant;

use iot_model::DeviceId;
use iot_telemetry::{MiningStats, TelemetryHandle};

use crate::graph::Dig;
use crate::snapshot::SnapshotData;

/// Mines a complete DIG from snapshot data: TemporalPC skeleton plus MLE
/// conditional probability tables, optionally parallelised across outcome
/// devices.
///
/// # Example
///
/// ```
/// use causaliot_core::miner::{mine_dig, MinerConfig};
/// use causaliot_core::snapshot::SnapshotData;
/// use iot_model::{BinaryEvent, DeviceId, StateSeries, SystemState, Timestamp};
/// use rand::{rngs::StdRng, Rng, SeedableRng};
///
/// // Device 1 copies device 0's (random) state with a one-event delay.
/// let mut rng = StdRng::seed_from_u64(3);
/// let mut events = Vec::new();
/// for i in 0..300u64 {
///     let on = rng.gen_bool(0.5);
///     events.push(BinaryEvent::new(Timestamp::from_secs(2 * i), DeviceId::from_index(0), on));
///     if rng.gen_bool(0.9) {
///         events.push(BinaryEvent::new(Timestamp::from_secs(2 * i + 1), DeviceId::from_index(1), on));
///     }
/// }
/// let series = StateSeries::derive(SystemState::all_off(2), events);
/// let data = SnapshotData::from_series(&series, 2);
/// let dig = mine_dig(&data, &MinerConfig::default());
/// let pairs = dig.interaction_pairs();
/// assert!(pairs.contains(&(DeviceId::from_index(0), DeviceId::from_index(1))));
/// ```
pub fn mine_dig(data: &SnapshotData, config: &MinerConfig) -> Dig {
    mine_dig_instrumented(data, config, &TelemetryHandle::disabled()).dig
}

/// The result of an instrumented mining run: the DIG plus the search
/// statistics and stage wall times that feed [`iot_telemetry::FitReport`].
#[derive(Debug, Clone)]
pub struct MiningOutcome {
    /// The mined DIG.
    pub dig: Dig,
    /// Aggregated TemporalPC search statistics.
    pub stats: MiningStats,
    /// Skeleton-discovery wall time, milliseconds.
    pub skeleton_ms: f64,
    /// CPT-estimation wall time, milliseconds.
    pub cpt_ms: f64,
}

/// Like [`mine_dig`], additionally collecting per-outcome search
/// statistics and reporting them through `telemetry`:
///
/// * counters `mining.ci_tests`, `mining.ci_tests.l<k>`,
///   `mining.edges_considered`, `mining.edges_pruned`,
/// * spans `mining.skeleton` and `mining.cpt`,
/// * one `mining.outcome` sink event per device with its wall time and
///   test count.
pub fn mine_dig_instrumented(
    data: &SnapshotData,
    config: &MinerConfig,
    telemetry: &TelemetryHandle,
) -> MiningOutcome {
    let n = data.num_devices();
    let pc = TemporalPc::new(config.clone());
    let skeleton_span = telemetry.span("mining.skeleton");
    let skeleton_start = Instant::now();
    let mut results: Vec<(Vec<crate::graph::LaggedVar>, PcStats, f64)> =
        vec![Default::default(); n];
    if config.parallel && n > 1 {
        let slots: Vec<_> = results.iter_mut().enumerate().collect();
        std::thread::scope(|scope| {
            for (device, slot) in slots {
                let pc = &pc;
                scope.spawn(move || {
                    let start = Instant::now();
                    let (causes, stats) =
                        pc.discover_causes_stats(data, DeviceId::from_index(device));
                    *slot = (causes, stats, start.elapsed().as_secs_f64() * 1e3);
                });
            }
        });
    } else {
        for (device, slot) in results.iter_mut().enumerate() {
            let start = Instant::now();
            let (causes, stats) = pc.discover_causes_stats(data, DeviceId::from_index(device));
            *slot = (causes, stats, start.elapsed().as_secs_f64() * 1e3);
        }
    }
    let skeleton_ms = skeleton_start.elapsed().as_secs_f64() * 1e3;
    skeleton_span.finish();

    let mut stats = MiningStats::default();
    for (device, (_, pc_stats, ms)) in results.iter().enumerate() {
        for (level, &tests) in pc_stats.tests_per_level.iter().enumerate() {
            if stats.ci_tests_per_level.len() <= level {
                stats.ci_tests_per_level.resize(level + 1, 0);
            }
            stats.ci_tests_per_level[level] += tests;
        }
        stats.ci_tests_total += pc_stats.tests_total();
        stats.edges_considered += pc_stats.candidates;
        stats.edges_pruned += pc_stats.pruned();
        stats.per_outcome_ms.push(*ms);
        telemetry.event(
            "mining.outcome",
            &[
                ("device", device as f64),
                ("ms", *ms),
                ("ci_tests", pc_stats.tests_total() as f64),
            ],
        );
    }
    if telemetry.enabled() {
        telemetry
            .counter("mining.ci_tests")
            .add(stats.ci_tests_total);
        for (level, &tests) in stats.ci_tests_per_level.iter().enumerate() {
            telemetry
                .counter(&format!("mining.ci_tests.l{level}"))
                .add(tests);
        }
        telemetry
            .counter("mining.edges_considered")
            .add(stats.edges_considered);
        telemetry
            .counter("mining.edges_pruned")
            .add(stats.edges_pruned);
    }

    let cpt_span = telemetry.span("mining.cpt");
    let cpt_start = Instant::now();
    let causes: Vec<Vec<crate::graph::LaggedVar>> =
        results.into_iter().map(|(ca, _, _)| ca).collect();
    let cpts = causes
        .iter()
        .enumerate()
        .map(|(device, ca)| estimate_cpt(data, DeviceId::from_index(device), ca, config.smoothing))
        .collect();
    let cpt_ms = cpt_start.elapsed().as_secs_f64() * 1e3;
    cpt_span.finish();
    MiningOutcome {
        dig: Dig::new(data.tau(), causes, cpts),
        stats,
        skeleton_ms,
        cpt_ms,
    }
}
