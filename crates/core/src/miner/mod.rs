//! The Interaction Miner (Section V-B).
//!
//! Constructs the DIG from graph snapshots in two steps:
//!
//! 1. **Skeleton construction** — [`TemporalPc`] identifies each device's
//!    causes with a PC-style conditional-independence search over the
//!    time-lagged variables; temporal order orients every edge for free.
//! 2. **CPT estimation** — [`estimate_cpt`] fills each device's
//!    conditional probability table by maximum likelihood over the
//!    snapshots.

mod config;
mod cpt_estimator;
mod pc_stable;
mod temporal_pc;

pub use config::MinerConfig;
pub use cpt_estimator::estimate_cpt;
pub use pc_stable::{mine_dig_stable, PcStable};
pub use temporal_pc::{Removal, RemovalReason, TemporalPc};

use iot_model::DeviceId;

use crate::graph::Dig;
use crate::snapshot::SnapshotData;

/// Mines a complete DIG from snapshot data: TemporalPC skeleton plus MLE
/// conditional probability tables, optionally parallelised across outcome
/// devices.
///
/// # Example
///
/// ```
/// use causaliot::miner::{mine_dig, MinerConfig};
/// use causaliot::snapshot::SnapshotData;
/// use iot_model::{BinaryEvent, DeviceId, StateSeries, SystemState, Timestamp};
/// use rand::{rngs::StdRng, Rng, SeedableRng};
///
/// // Device 1 copies device 0's (random) state with a one-event delay.
/// let mut rng = StdRng::seed_from_u64(3);
/// let mut events = Vec::new();
/// for i in 0..300u64 {
///     let on = rng.gen_bool(0.5);
///     events.push(BinaryEvent::new(Timestamp::from_secs(2 * i), DeviceId::from_index(0), on));
///     if rng.gen_bool(0.9) {
///         events.push(BinaryEvent::new(Timestamp::from_secs(2 * i + 1), DeviceId::from_index(1), on));
///     }
/// }
/// let series = StateSeries::derive(SystemState::all_off(2), events);
/// let data = SnapshotData::from_series(&series, 2);
/// let dig = mine_dig(&data, &MinerConfig::default());
/// let pairs = dig.interaction_pairs();
/// assert!(pairs.contains(&(DeviceId::from_index(0), DeviceId::from_index(1))));
/// ```
pub fn mine_dig(data: &SnapshotData, config: &MinerConfig) -> Dig {
    let n = data.num_devices();
    let pc = TemporalPc::new(config.clone());
    let mut causes: Vec<Vec<crate::graph::LaggedVar>> = vec![Vec::new(); n];
    if config.parallel && n > 1 {
        let slots: Vec<_> = causes.iter_mut().enumerate().collect();
        crossbeam::thread::scope(|scope| {
            for (device, slot) in slots {
                let pc = &pc;
                scope.spawn(move |_| {
                    *slot = pc.discover_causes(data, DeviceId::from_index(device));
                });
            }
        })
        .expect("mining worker panicked");
    } else {
        for (device, slot) in causes.iter_mut().enumerate() {
            *slot = pc.discover_causes(data, DeviceId::from_index(device));
        }
    }
    let cpts = causes
        .iter()
        .enumerate()
        .map(|(device, ca)| {
            estimate_cpt(data, DeviceId::from_index(device), ca, config.smoothing)
        })
        .collect();
    Dig::new(data.tau(), causes, cpts)
}
