//! The TemporalPC algorithm (Algorithm 1 of the paper).
//!
//! For one outcome state `S_i^t`, TemporalPC starts from the
//! fully-connected preliminary cause set — every device at every lag
//! `1..=τ` — and iterates over conditioning-set sizes `l = 0, 1, ...`. For
//! each remaining parent it enumerates the size-`l` subsets of the other
//! remaining parents and runs a G² conditional-independence test; the first
//! subset that renders the pair conditionally independent (p-value > α)
//! removes the parent. The loop terminates when fewer than `l + 1` parents
//! remain. Temporal precedence orients every surviving edge.

use iot_model::DeviceId;
use iot_stats::gsquare::ci_test_from_table;
use serde::{Deserialize, Serialize};

use super::MinerConfig;
use crate::graph::LaggedVar;
use crate::snapshot::SnapshotData;

/// Why a candidate interaction was rejected — mirrors the paper's
/// evaluation narrative, which distinguishes marginally independent pairs
/// from spurious interactions explained away by a conditioning set
/// (Section VI-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RemovalReason {
    /// Removed with an empty conditioning set (`l = 0`): the states are
    /// simply independent.
    MarginallyIndependent,
    /// Removed given a non-empty conditioning set: a spurious interaction
    /// stemming from an intermediate factor or a common cause.
    Spurious,
}

/// A record of one edge removal, for tracing and evaluation reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Removal {
    /// The removed candidate cause.
    pub parent: LaggedVar,
    /// The conditioning set that exposed the independence.
    pub conditioning_set: Vec<LaggedVar>,
    /// The p-value of the decisive test.
    pub p_value: f64,
    /// Why the edge fell.
    pub reason: RemovalReason,
}

/// Search statistics for one outcome device — the unit of the paper's
/// Section V-D complexity analysis and of the `mining.*` telemetry.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PcStats {
    /// Conditional-independence tests per conditioning-set size
    /// `l = 0, 1, ...`.
    pub tests_per_level: Vec<u64>,
    /// Candidate edges entering the search (devices × lags).
    pub candidates: u64,
    /// Candidates surviving every test.
    pub survivors: u64,
}

impl PcStats {
    /// Total conditional-independence tests across all levels.
    pub fn tests_total(&self) -> u64 {
        self.tests_per_level.iter().sum()
    }

    /// Candidates removed by an independence test.
    pub fn pruned(&self) -> u64 {
        self.candidates - self.survivors
    }
}

/// The TemporalPC cause-discovery algorithm.
#[derive(Debug, Clone)]
pub struct TemporalPc {
    config: MinerConfig,
}

impl TemporalPc {
    /// Creates the algorithm with the given configuration.
    pub fn new(config: MinerConfig) -> Self {
        TemporalPc { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &MinerConfig {
        &self.config
    }

    /// Discovers the cause set `Ca(S_i^t)` for one outcome device.
    ///
    /// Returns the surviving causes in canonical `(device, lag)` order.
    pub fn discover_causes(&self, data: &SnapshotData, outcome: DeviceId) -> Vec<LaggedVar> {
        self.run(data, outcome, None).0
    }

    /// Like [`TemporalPc::discover_causes`], additionally returning the
    /// number of conditional-independence tests executed (the unit of the
    /// Section V-D complexity analysis).
    pub fn discover_causes_counting(
        &self,
        data: &SnapshotData,
        outcome: DeviceId,
    ) -> (Vec<LaggedVar>, u64) {
        let (causes, stats) = self.run(data, outcome, None);
        let total = stats.tests_total();
        (causes, total)
    }

    /// Like [`TemporalPc::discover_causes`], additionally returning full
    /// per-level search statistics ([`PcStats`]) — the instrumented entry
    /// point used by [`crate::miner::mine_dig_instrumented`].
    pub fn discover_causes_stats(
        &self,
        data: &SnapshotData,
        outcome: DeviceId,
    ) -> (Vec<LaggedVar>, PcStats) {
        self.run(data, outcome, None)
    }

    /// Like [`TemporalPc::discover_causes`] but records every removal,
    /// enabling the Figure 4-style walkthrough and the rejected-interaction
    /// accounting of Section VI-B.
    pub fn discover_causes_traced(
        &self,
        data: &SnapshotData,
        outcome: DeviceId,
    ) -> (Vec<LaggedVar>, Vec<Removal>) {
        let mut trace = Vec::new();
        let (causes, _) = self.run(data, outcome, Some(&mut trace));
        (causes, trace)
    }

    fn run(
        &self,
        data: &SnapshotData,
        outcome: DeviceId,
        mut trace: Option<&mut Vec<Removal>>,
    ) -> (Vec<LaggedVar>, PcStats) {
        let outcome_var = LaggedVar::new(outcome, 0);
        // Algorithm 1, line 5: fully-connected preliminary cause set.
        let mut ca = LaggedVar::all_candidates(data.num_devices(), data.tau());
        let mut stats = PcStats {
            candidates: ca.len() as u64,
            ..PcStats::default()
        };
        let mut l = 0usize;
        // Algorithm 1, lines 7-21.
        while l <= self.config.max_cond_size {
            // Line 9: stop when no size-l conditioning set can be drawn.
            if ca.len() < l + 1 {
                break;
            }
            stats.tests_per_level.push(0);
            let parents: Vec<LaggedVar> = ca.clone();
            for parent in parents {
                // A parent removed earlier in this sweep no longer needs
                // testing.
                if !ca.contains(&parent) {
                    continue;
                }
                let rest: Vec<LaggedVar> = ca.iter().copied().filter(|&v| v != parent).collect();
                if rest.len() < l {
                    continue;
                }
                let mut subsets = Combinations::new(rest.len(), l);
                let mut scratch = vec![LaggedVar::new(DeviceId::from_index(0), 1); l];
                while let Some(indices) = subsets.next() {
                    for (slot, &idx) in scratch.iter_mut().zip(indices) {
                        *slot = rest[idx];
                    }
                    let table = data.stratified_counts(parent, outcome_var, &scratch);
                    let result = ci_test_from_table(&table, self.config.ci_test);
                    *stats.tests_per_level.last_mut().expect("level pushed") += 1;
                    if result.p_value > self.config.alpha {
                        ca.retain(|&v| v != parent);
                        if let Some(trace) = trace.as_deref_mut() {
                            trace.push(Removal {
                                parent,
                                conditioning_set: scratch.clone(),
                                p_value: result.p_value,
                                reason: if l == 0 {
                                    RemovalReason::MarginallyIndependent
                                } else {
                                    RemovalReason::Spurious
                                },
                            });
                        }
                        break;
                    }
                }
            }
            l += 1;
        }
        ca.sort();
        stats.survivors = ca.len() as u64;
        (ca, stats)
    }
}

/// Lexicographic k-combination index generator (no allocation per item).
struct Combinations {
    n: usize,
    k: usize,
    indices: Vec<usize>,
    started: bool,
    done: bool,
}

impl Combinations {
    fn new(n: usize, k: usize) -> Self {
        Combinations {
            n,
            k,
            indices: (0..k).collect(),
            started: false,
            done: k > n,
        }
    }

    fn next(&mut self) -> Option<&[usize]> {
        if self.done {
            return None;
        }
        if !self.started {
            self.started = true;
            return Some(&self.indices);
        }
        // Advance the rightmost index that can still move.
        let k = self.k;
        if k == 0 {
            self.done = true;
            return None;
        }
        let mut i = k;
        loop {
            if i == 0 {
                self.done = true;
                return None;
            }
            i -= 1;
            if self.indices[i] < self.n - (k - i) {
                self.indices[i] += 1;
                for j in i + 1..k {
                    self.indices[j] = self.indices[j - 1] + 1;
                }
                return Some(&self.indices);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iot_model::{BinaryEvent, StateSeries, SystemState, Timestamp};

    fn collect_combinations(n: usize, k: usize) -> Vec<Vec<usize>> {
        let mut c = Combinations::new(n, k);
        let mut out = Vec::new();
        while let Some(ix) = c.next() {
            out.push(ix.to_vec());
        }
        out
    }

    #[test]
    fn combinations_enumerate_lexicographically() {
        assert_eq!(
            collect_combinations(4, 2),
            vec![
                vec![0, 1],
                vec![0, 2],
                vec![0, 3],
                vec![1, 2],
                vec![1, 3],
                vec![2, 3]
            ]
        );
        assert_eq!(collect_combinations(3, 0), vec![Vec::<usize>::new()]);
        assert_eq!(collect_combinations(2, 3), Vec::<Vec<usize>>::new());
        assert_eq!(collect_combinations(3, 3), vec![vec![0, 1, 2]]);
    }

    fn bev(t: u64, dev: usize, on: bool) -> BinaryEvent {
        BinaryEvent::new(Timestamp::from_secs(t), DeviceId::from_index(dev), on)
    }

    /// Builds a noisy 3-device chain 0 -> 1 -> 2: device 0 is exogenous
    /// random, and each stage copies its parent with 10% independent
    /// flips. The noise is what makes the direct parent strictly more
    /// informative than the grandparent (a fully deterministic chain is
    /// Markov-equivalent under several parent choices).
    fn chain_series(rounds: u64) -> StateSeries {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        let mut events = Vec::new();
        let mut t = 0u64;
        for _ in 0..rounds {
            let s0 = rng.gen_bool(0.5);
            let s1 = if rng.gen_bool(0.9) { s0 } else { !s0 };
            let s2 = if rng.gen_bool(0.9) { s1 } else { !s1 };
            events.push(bev(t, 0, s0));
            t += 1;
            events.push(bev(t, 1, s1));
            t += 1;
            events.push(bev(t, 2, s2));
            t += 1;
        }
        StateSeries::derive(SystemState::all_off(3), events)
    }

    #[test]
    fn chain_discovery_removes_spurious_grandparent() {
        let series = chain_series(400);
        let data = SnapshotData::from_series(&series, 2);
        let pc = TemporalPc::new(MinerConfig {
            parallel: false,
            ..MinerConfig::default()
        });
        // Device 2's direct parent is device 1 (lag 1).
        let (causes, trace) = pc.discover_causes_traced(&data, DeviceId::from_index(2));
        assert!(
            causes.contains(&LaggedVar::new(DeviceId::from_index(1), 1)),
            "direct parent must survive, got {causes:?}"
        );
        assert!(
            !causes
                .iter()
                .any(|c| c.device == DeviceId::from_index(0) && c.lag == 1),
            "device 0 at lag 1 is not a direct cause of device 2, got {causes:?}"
        );
        assert!(!trace.is_empty(), "some candidates must have been removed");
    }

    #[test]
    fn independent_devices_end_up_unconnected() {
        // Two devices toggling at co-prime periods: no dependence.
        let mut events = Vec::new();
        let mut s0 = false;
        let mut s1 = false;
        for t in 0..2000u64 {
            if t % 2 == 0 {
                s0 = !s0;
                events.push(bev(t, 0, s0));
            } else if t % 3 == 0 {
                s1 = !s1;
                events.push(bev(t, 1, s1));
            } else {
                // Keep the stream dense with self-flips of device 1.
                s1 = !s1;
                events.push(bev(t, 1, s1));
            }
        }
        let series = StateSeries::derive(SystemState::all_off(2), events);
        let data = SnapshotData::from_series(&series, 2);
        let pc = TemporalPc::new(MinerConfig::default());
        let causes = pc.discover_causes(&data, DeviceId::from_index(0));
        assert!(
            !causes.iter().any(|c| c.device == DeviceId::from_index(1)),
            "device 1 must not cause device 0, got {causes:?}"
        );
    }

    #[test]
    fn trace_distinguishes_marginal_from_spurious() {
        let series = chain_series(400);
        let data = SnapshotData::from_series(&series, 2);
        let pc = TemporalPc::new(MinerConfig {
            parallel: false,
            ..MinerConfig::default()
        });
        let (_, trace) = pc.discover_causes_traced(&data, DeviceId::from_index(2));
        for removal in &trace {
            match removal.reason {
                RemovalReason::MarginallyIndependent => {
                    assert!(removal.conditioning_set.is_empty())
                }
                RemovalReason::Spurious => assert!(!removal.conditioning_set.is_empty()),
            }
            assert!(removal.p_value > pc.config().alpha);
        }
    }

    #[test]
    fn pearson_variant_recovers_the_same_chain() {
        use iot_stats::gsquare::CiTestKind;
        let series = chain_series(400);
        let data = SnapshotData::from_series(&series, 2);
        let pc = TemporalPc::new(MinerConfig {
            ci_test: CiTestKind::PearsonChi2,
            parallel: false,
            ..MinerConfig::default()
        });
        let causes = pc.discover_causes(&data, DeviceId::from_index(2));
        assert!(
            causes.contains(&LaggedVar::new(DeviceId::from_index(1), 1)),
            "direct parent must survive under Pearson chi2: {causes:?}"
        );
    }

    #[test]
    fn causes_are_canonically_sorted() {
        let series = chain_series(200);
        let data = SnapshotData::from_series(&series, 2);
        let pc = TemporalPc::new(MinerConfig::default());
        let causes = pc.discover_causes(&data, DeviceId::from_index(2));
        let mut sorted = causes.clone();
        sorted.sort();
        assert_eq!(causes, sorted);
    }
}
