//! # CausalIoT — anomaly detection via device interaction graphs
//!
//! A from-scratch reproduction of *"IoT Anomaly Detection Via Device
//! Interaction Graph"* (DSN 2023). Smart-home devices extensively interact —
//! through user activities, shared physical channels, and trigger-action
//! automation rules — and those interactions govern legitimate device state
//! transitions. This crate:
//!
//! 1. **Preprocesses** raw device events ([`preprocess`]): duplicate
//!    suppression, three-sigma extreme filtering, type unification to binary
//!    states, and graph-snapshot generation (Section V-A of the paper).
//! 2. **Mines** the Device Interaction Graph ([`miner`], [`graph`]): the
//!    TemporalPC causal-discovery algorithm identifies each device's causes
//!    among time-lagged device states using G² conditional-independence
//!    tests, then estimates a conditional probability table per device
//!    (Section V-B).
//! 3. **Monitors** runtime events ([`monitor`]): a phantom state machine
//!    tracks the latest graph snapshot, anomaly scores are
//!    `1 − P(state | causes)` (Eq. 1), and the k-sequence detection
//!    procedure reports *contextual anomalies* (events violating interaction
//!    executions) and tracks *collective anomalies* (event chains riding
//!    maliciously triggered interactions) (Sections IV and V-C).
//!
//! The [`pipeline`] module ties the three together behind a builder facade.
//!
//! # Quickstart
//!
//! ```
//! use causaliot_core::pipeline::CausalIot;
//! use iot_model::{Attribute, BinaryEvent, DeviceRegistry, Room, Timestamp};
//! use rand::{rngs::StdRng, Rng, SeedableRng};
//!
//! # fn main() -> Result<(), causaliot_core::CausalIotError> {
//! let mut reg = DeviceRegistry::new();
//! let motion = reg.add("PE_kitchen", Attribute::PresenceSensor, Room::new("kitchen"))?;
//! let lamp = reg.add("S_kitchen", Attribute::Switch, Room::new("kitchen"))?;
//!
//! // Train on a log where the lamp closely follows (random) motion.
//! let mut rng = StdRng::seed_from_u64(1);
//! let mut events = Vec::new();
//! for i in 0..400u64 {
//!     let t = i * 40;
//!     let on = rng.gen_bool(0.5);
//!     events.push(BinaryEvent::new(Timestamp::from_secs(t), motion, on));
//!     if rng.gen_bool(0.9) {
//!         events.push(BinaryEvent::new(Timestamp::from_secs(t + 10), lamp, on));
//!     }
//! }
//!
//! let model = CausalIot::builder().tau(2).build().fit_binary(&reg, &events)?;
//! let mut monitor = model.monitor();
//!
//! // A lamp activation with no preceding motion violates the interaction.
//! monitor.observe(BinaryEvent::new(Timestamp::from_secs(99_000), motion, false));
//! let ghost = BinaryEvent::new(Timestamp::from_secs(99_040), lamp, true);
//! let verdict = monitor.observe(ghost);
//! assert!(verdict.score > 0.5);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;

pub mod graph;
pub mod ingest;
pub mod miner;
pub mod monitor;
pub mod persist;
pub mod pipeline;
pub mod preprocess;
pub mod snapshot;

pub use error::{CausalIotError, ConfigError};
pub use ingest::{
    DeadLetter, DeadLetterCounts, GuardedMonitor, IngestEvent, IngestGuard, IngestPolicy,
    IngestStep, StaleSet,
};
pub use monitor::{
    Alarm, AlarmKind, AnomalousEvent, DriftConfig, DriftDetector, DriftReport, DriftSeverity,
    DriftSignal, Verdict,
};
pub use pipeline::{
    CalibratedModel, CausalIot, CausalIotBuilder, CausalIotConfig, DropReason, FitPipeline,
    FitStage, FittedModel, MinedGraph, Monitor, Observation, ObserveCtx, OwnedMonitor,
    Preprocessed, RawEvents, Refit, Snapshotted, TauChoice,
};
