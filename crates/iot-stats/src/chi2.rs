//! The χ² distribution: CDF and survival function.
//!
//! The G² statistic is asymptotically χ²-distributed under the null
//! hypothesis of conditional independence, so the p-value of a G² test is
//! the χ² upper-tail probability at the observed statistic.

use crate::gamma::{regularized_gamma_p, regularized_gamma_q};

/// χ² cumulative distribution function with `dof` degrees of freedom.
///
/// # Panics
///
/// Panics if `dof == 0` or `x < 0`.
///
/// # Example
///
/// ```
/// // Median of chi2(2) is 2 ln 2.
/// let median = 2.0 * 2f64.ln();
/// assert!((iot_stats::chi2::chi2_cdf(median, 2) - 0.5).abs() < 1e-12);
/// ```
pub fn chi2_cdf(x: f64, dof: u64) -> f64 {
    assert!(dof > 0, "chi-square needs dof >= 1");
    assert!(x >= 0.0, "chi-square is supported on x >= 0");
    regularized_gamma_p(dof as f64 / 2.0, x / 2.0)
}

/// χ² survival function `P(X ≥ x)` — the p-value of a χ²-distributed test
/// statistic.
///
/// Computed via the upper incomplete gamma directly, so tiny p-values keep
/// full relative precision.
///
/// # Panics
///
/// Panics if `dof == 0` or `x < 0`.
pub fn chi2_sf(x: f64, dof: u64) -> f64 {
    assert!(dof > 0, "chi-square needs dof >= 1");
    assert!(x >= 0.0, "chi-square is supported on x >= 0");
    regularized_gamma_q(dof as f64 / 2.0, x / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference quantiles from standard χ² tables.
    #[test]
    fn matches_reference_tables() {
        // (x, dof, upper tail)
        let cases = [
            (3.841, 1, 0.05),
            (6.635, 1, 0.01),
            (10.828, 1, 0.001),
            (5.991, 2, 0.05),
            (9.210, 2, 0.01),
            (7.815, 3, 0.05),
            (18.307, 10, 0.05),
        ];
        for (x, dof, tail) in cases {
            let sf = chi2_sf(x, dof);
            assert!(
                (sf - tail).abs() < 2e-4,
                "sf({x}, {dof}) = {sf}, expected ~{tail}"
            );
        }
    }

    #[test]
    fn cdf_sf_complement() {
        for dof in [1u64, 2, 5, 20] {
            for &x in &[0.0, 0.5, 3.0, 15.0, 60.0] {
                assert!((chi2_cdf(x, dof) + chi2_sf(x, dof) - 1.0).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn chi2_one_dof_is_squared_normal() {
        // P(chi2_1 >= z^2) = 2 * (1 - Phi(z)); spot check z = 1.96.
        let sf = chi2_sf(1.96f64 * 1.96, 1);
        assert!((sf - 0.05).abs() < 1e-3);
    }

    #[test]
    fn extreme_statistic_gives_tiny_p() {
        let p = chi2_sf(500.0, 2);
        assert!(p > 0.0 && p < 1e-100);
    }

    #[test]
    #[should_panic(expected = "dof")]
    fn zero_dof_rejected() {
        chi2_sf(1.0, 0);
    }
}
