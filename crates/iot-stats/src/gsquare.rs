//! The G² conditional-independence test (Section V-B of the paper).
//!
//! To decide whether binary variables `X ⫫ Y | Z`, the test computes
//! `G² = 2 Σ N ln(N/E)` over a contingency table stratified by the
//! assignments of `Z`, and compares it against a χ² distribution with
//! `(|X|−1)(|Y|−1)·Π|Z_i|` degrees of freedom (adjusted downward for
//! degenerate strata). TemporalPC removes an edge when the p-value exceeds
//! its significance threshold `α` — i.e. when the data is *consistent with*
//! the null hypothesis of conditional independence.

use serde::{Deserialize, Serialize};

use crate::chi2::chi2_sf;
use crate::contingency::StratifiedTable;

/// One observation for a CI test: values of `X`, `Y`, and the packed
/// assignment of the conditioning set `Z` (bit `i` of `z_code` is the value
/// of the `i`-th conditioning variable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Observation {
    /// Value of the candidate cause.
    pub x: bool,
    /// Value of the outcome.
    pub y: bool,
    /// Packed binary assignment of the conditioning set.
    pub z_code: usize,
}

/// The outcome of a G² test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GSquareResult {
    /// The G² statistic (non-negative).
    pub statistic: f64,
    /// Effective degrees of freedom after dropping degenerate strata.
    pub dof: u64,
    /// Upper-tail χ² probability of the statistic. By convention `1.0`
    /// when no stratum was informative (no evidence of dependence).
    pub p_value: f64,
    /// Number of observations consumed.
    pub n: u64,
}

impl GSquareResult {
    /// Whether the null hypothesis `X ⫫ Y | Z` is *retained* at
    /// significance level `alpha` (i.e. the variables look independent and
    /// TemporalPC should remove the edge).
    pub fn independent_at(&self, alpha: f64) -> bool {
        self.p_value > alpha
    }
}

/// Runs the G² test over a stream of observations.
///
/// `num_conditioning` is `|Z|`; the stratified table allocates `2^|Z|`
/// strata, so keep conditioning sets small (TemporalPC grows them one
/// variable at a time and homes usually have limited interaction degree,
/// Section V-D).
///
/// # Panics
///
/// Panics if `num_conditioning >= usize::BITS as usize` (absurdly large
/// conditioning sets) or an observation's `z_code` does not fit.
///
/// # Example
///
/// ```
/// use iot_stats::gsquare::{g_square_test, Observation};
///
/// // Y = Z, X independent of both: conditioning on Z exposes independence.
/// let obs: Vec<Observation> = (0..400).map(|i| {
///     let z = (i / 2) % 2 == 0;
///     Observation { x: i % 2 == 0, y: z, z_code: z as usize }
/// }).collect();
/// let r = g_square_test(obs.iter().copied(), 1);
/// assert!(r.independent_at(0.001));
/// ```
pub fn g_square_test(
    observations: impl IntoIterator<Item = Observation>,
    num_conditioning: usize,
) -> GSquareResult {
    assert!(
        num_conditioning < usize::BITS as usize,
        "conditioning set too large"
    );
    let num_strata = 1usize << num_conditioning;
    let mut table = StratifiedTable::new(num_strata);
    let mut n = 0u64;
    for obs in observations {
        assert!(
            obs.z_code < num_strata,
            "z_code {} out of range for |Z| = {num_conditioning}",
            obs.z_code
        );
        table.record(obs.x, obs.y, obs.z_code);
        n += 1;
    }
    let (statistic, dof) = table.g_statistic_and_dof();
    let p_value = if dof == 0 {
        1.0
    } else {
        chi2_sf(statistic, dof)
    };
    GSquareResult {
        statistic,
        dof,
        p_value,
        n,
    }
}

/// Which conditional-independence statistic to use (the paper's
/// constraint-based framework "can encode various independence test
/// methods"; Section VII-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum CiTestKind {
    /// The likelihood-ratio G² statistic (the paper's choice).
    #[default]
    GSquare,
    /// Pearson's χ² statistic.
    PearsonChi2,
}

/// Computes a CI-test result from an already-populated stratified table
/// using the chosen statistic.
pub fn ci_test_from_table(table: &StratifiedTable, kind: CiTestKind) -> GSquareResult {
    let (statistic, dof) = match kind {
        CiTestKind::GSquare => table.g_statistic_and_dof(),
        CiTestKind::PearsonChi2 => table.chi2_statistic_and_dof(),
    };
    let p_value = if dof == 0 {
        1.0
    } else {
        chi2_sf(statistic, dof)
    };
    GSquareResult {
        statistic,
        dof,
        p_value,
        n: table.total(),
    }
}

/// Computes a [`GSquareResult`] from an already-populated stratified
/// contingency table.
///
/// This is the fast path used by TemporalPC, which fills tables with
/// bit-parallel popcounts instead of streaming observations one at a time.
pub fn g_square_from_table(table: &StratifiedTable) -> GSquareResult {
    let (statistic, dof) = table.g_statistic_and_dof();
    let p_value = if dof == 0 {
        1.0
    } else {
        chi2_sf(statistic, dof)
    };
    GSquareResult {
        statistic,
        dof,
        p_value,
        n: table.total(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(x: bool, y: bool, z: usize) -> Observation {
        Observation { x, y, z_code: z }
    }

    #[test]
    fn detects_marginal_dependence() {
        let data: Vec<Observation> = (0..300).map(|i| obs(i % 2 == 0, i % 2 == 0, 0)).collect();
        let r = g_square_test(data, 0);
        assert!(r.p_value < 1e-10);
        assert!(!r.independent_at(0.001));
        assert_eq!(r.n, 300);
    }

    #[test]
    fn retains_null_for_independent_noise() {
        // Deterministic interleaving: x cycles with period 2, y with period 4
        // -> exactly balanced joint counts, G = 0.
        let data: Vec<Observation> = (0..400)
            .map(|i| obs(i % 2 == 0, (i / 2) % 2 == 0, 0))
            .collect();
        let r = g_square_test(data, 0);
        assert!(r.statistic.abs() < 1e-9);
        assert!(r.independent_at(0.001));
    }

    #[test]
    fn conditioning_explains_away_chain_dependence() {
        // X -> Z -> Y deterministic chain: marginally dependent,
        // conditionally independent given Z.
        let mut data_marginal = Vec::new();
        let mut data_conditional = Vec::new();
        for i in 0..800 {
            let x = i % 2 == 0;
            let z = x; // Z copies X
            let y = z; // Y copies Z
            data_marginal.push(obs(x, y, 0));
            data_conditional.push(obs(x, y, z as usize));
        }
        let marginal = g_square_test(data_marginal, 0);
        assert!(!marginal.independent_at(0.001), "marginally dependent");
        let conditional = g_square_test(data_conditional, 1);
        assert!(
            conditional.independent_at(0.001),
            "conditioning on Z must remove dependence (p = {})",
            conditional.p_value
        );
    }

    #[test]
    fn empty_input_is_vacuously_independent() {
        let r = g_square_test(std::iter::empty(), 1);
        assert_eq!(r.p_value, 1.0);
        assert_eq!(r.dof, 0);
        assert_eq!(r.n, 0);
    }

    #[test]
    fn noisy_dependence_still_detected() {
        // y = x with 10% deterministic flips.
        let data: Vec<Observation> = (0..1000)
            .map(|i| {
                let x = i % 2 == 0;
                let y = if i % 10 == 0 { !x } else { x };
                obs(x, y, 0)
            })
            .collect();
        let r = g_square_test(data, 0);
        assert!(r.p_value < 1e-6);
    }

    #[test]
    #[should_panic(expected = "z_code")]
    fn z_code_out_of_range_panics() {
        g_square_test([obs(true, true, 2)], 1);
    }

    #[test]
    fn pearson_and_g_reach_the_same_verdicts() {
        use crate::contingency::StratifiedTable;
        // Strong dependence.
        let mut dep = StratifiedTable::new(1);
        for i in 0..200 {
            dep.record(i % 2 == 0, i % 2 == 0, 0);
        }
        let g = ci_test_from_table(&dep, CiTestKind::GSquare);
        let x2 = ci_test_from_table(&dep, CiTestKind::PearsonChi2);
        assert!(!g.independent_at(0.001) && !x2.independent_at(0.001));
        // Exact independence.
        let mut ind = StratifiedTable::new(1);
        for i in 0..400u32 {
            ind.record(i % 2 == 0, (i / 2) % 2 == 0, 0);
        }
        let g = ci_test_from_table(&ind, CiTestKind::GSquare);
        let x2 = ci_test_from_table(&ind, CiTestKind::PearsonChi2);
        assert!(g.independent_at(0.001) && x2.independent_at(0.001));
    }
}
