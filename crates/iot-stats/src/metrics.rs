//! Detection-accuracy metrics used throughout the evaluation (Section VI).
//!
//! * [`ConfusionMatrix`] — accuracy / precision / recall / F1 for point
//!   detection (Tables III and IV, Figure 5),
//! * [`ChainOutcome`] / [`ChainStats`] — collective-anomaly metrics
//!   (% detected, % tracked, average detection length; Table V).

use std::collections::HashSet;

use serde::{Deserialize, Serialize};

/// Binary-classification counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    /// True positives.
    pub tp: u64,
    /// False positives.
    pub fp: u64,
    /// False negatives (missing alarms).
    pub fn_: u64,
    /// True negatives.
    pub tn: u64,
}

impl ConfusionMatrix {
    /// Creates an empty matrix.
    pub fn new() -> Self {
        ConfusionMatrix::default()
    }

    /// Builds the matrix by comparing alarm positions against injected
    /// (ground-truth anomalous) positions over a stream of `total`
    /// positions — the evaluation procedure of Section VI-C ("we first
    /// compare the injected positions and the alarming positions").
    pub fn from_positions(
        injected: &HashSet<usize>,
        alarms: &HashSet<usize>,
        total: usize,
    ) -> Self {
        let mut m = ConfusionMatrix::new();
        for pos in 0..total {
            match (injected.contains(&pos), alarms.contains(&pos)) {
                (true, true) => m.tp += 1,
                (false, true) => m.fp += 1,
                (true, false) => m.fn_ += 1,
                (false, false) => m.tn += 1,
            }
        }
        m
    }

    /// Records one prediction.
    pub fn record(&mut self, actual_anomaly: bool, predicted_anomaly: bool) {
        match (actual_anomaly, predicted_anomaly) {
            (true, true) => self.tp += 1,
            (false, true) => self.fp += 1,
            (true, false) => self.fn_ += 1,
            (false, false) => self.tn += 1,
        }
    }

    /// Total number of classified items.
    pub fn total(&self) -> u64 {
        self.tp + self.fp + self.fn_ + self.tn
    }

    /// `(TP + TN) / total`; `0.0` when empty.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            (self.tp + self.tn) as f64 / total as f64
        }
    }

    /// `TP / (TP + FP)`; `0.0` when no positives were predicted.
    pub fn precision(&self) -> f64 {
        let denom = self.tp + self.fp;
        if denom == 0 {
            0.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// `TP / (TP + FN)`; `0.0` when nothing was actually positive.
    pub fn recall(&self) -> f64 {
        let denom = self.tp + self.fn_;
        if denom == 0 {
            0.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// Harmonic mean of precision and recall; `0.0` when both are zero.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Merges another matrix into this one.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.fn_ += other.fn_;
        self.tn += other.tn;
    }
}

/// The outcome of evaluating one injected collective-anomaly chain against
/// the detector's reported chains (Section VI-D's two questions).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChainOutcome {
    /// Ground-truth chain length (contextual trigger + propagation).
    pub true_len: usize,
    /// `true` when the detector reported *any subsequence* of the chain
    /// ("can it detect the existence of abnormal interaction executions?").
    pub detected: bool,
    /// `true` when the detector reconstructed the *whole* chain
    /// ("can it track the whole sequence?").
    pub tracked: bool,
    /// Number of the chain's events the detector collected (0 when
    /// undetected).
    pub detected_len: usize,
}

/// Aggregated collective-anomaly metrics — one row of Table V.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChainStats {
    /// Number of injected chains.
    pub num_chains: usize,
    /// Mean ground-truth chain length ("Avg. anomaly length").
    pub avg_anomaly_len: f64,
    /// Fraction of chains with any detection ("% detected anomalies").
    pub pct_detected: f64,
    /// Fraction of chains fully reconstructed ("% tracked anomalies").
    pub pct_tracked: f64,
    /// Mean number of chain events collected, over *detected* chains
    /// ("Avg. detection length").
    pub avg_detection_len: f64,
}

impl ChainStats {
    /// Aggregates per-chain outcomes.
    ///
    /// # Panics
    ///
    /// Panics if `outcomes` is empty.
    pub fn aggregate(outcomes: &[ChainOutcome]) -> Self {
        assert!(!outcomes.is_empty(), "no chain outcomes to aggregate");
        let n = outcomes.len();
        let detected: Vec<&ChainOutcome> = outcomes.iter().filter(|o| o.detected).collect();
        let avg_detection_len = if detected.is_empty() {
            0.0
        } else {
            detected.iter().map(|o| o.detected_len as f64).sum::<f64>() / detected.len() as f64
        };
        ChainStats {
            num_chains: n,
            avg_anomaly_len: outcomes.iter().map(|o| o.true_len as f64).sum::<f64>() / n as f64,
            pct_detected: detected.len() as f64 / n as f64,
            pct_tracked: outcomes.iter().filter(|o| o.tracked).count() as f64 / n as f64,
            avg_detection_len,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_detector() {
        let injected: HashSet<usize> = [1, 5, 9].into_iter().collect();
        let m = ConfusionMatrix::from_positions(&injected, &injected, 10);
        assert_eq!(m.tp, 3);
        assert_eq!(m.fp, 0);
        assert_eq!(m.fn_, 0);
        assert_eq!(m.tn, 7);
        assert_eq!(m.accuracy(), 1.0);
        assert_eq!(m.precision(), 1.0);
        assert_eq!(m.recall(), 1.0);
        assert_eq!(m.f1(), 1.0);
    }

    #[test]
    fn partial_detector() {
        let injected: HashSet<usize> = [0, 1, 2, 3].into_iter().collect();
        let alarms: HashSet<usize> = [0, 1, 8].into_iter().collect();
        let m = ConfusionMatrix::from_positions(&injected, &alarms, 10);
        assert_eq!(m.tp, 2);
        assert_eq!(m.fp, 1);
        assert_eq!(m.fn_, 2);
        assert_eq!(m.tn, 5);
        assert!((m.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.recall() - 0.5).abs() < 1e-12);
        let f1 = 2.0 * (2.0 / 3.0) * 0.5 / (2.0 / 3.0 + 0.5);
        assert!((m.f1() - f1).abs() < 1e-12);
    }

    #[test]
    fn degenerate_matrices_do_not_divide_by_zero() {
        let m = ConfusionMatrix::new();
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.precision(), 0.0);
        assert_eq!(m.recall(), 0.0);
        assert_eq!(m.f1(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = ConfusionMatrix {
            tp: 1,
            fp: 2,
            fn_: 3,
            tn: 4,
        };
        a.merge(&ConfusionMatrix {
            tp: 10,
            fp: 20,
            fn_: 30,
            tn: 40,
        });
        assert_eq!(a.total(), 110);
        assert_eq!(a.tp, 11);
    }

    #[test]
    fn record_routes_to_cells() {
        let mut m = ConfusionMatrix::new();
        m.record(true, true);
        m.record(true, false);
        m.record(false, true);
        m.record(false, false);
        assert_eq!((m.tp, m.fn_, m.fp, m.tn), (1, 1, 1, 1));
    }

    #[test]
    fn chain_stats_match_table_five_semantics() {
        let outcomes = vec![
            ChainOutcome {
                true_len: 3,
                detected: true,
                tracked: true,
                detected_len: 3,
            },
            ChainOutcome {
                true_len: 3,
                detected: true,
                tracked: false,
                detected_len: 2,
            },
            ChainOutcome {
                true_len: 2,
                detected: false,
                tracked: false,
                detected_len: 0,
            },
        ];
        let stats = ChainStats::aggregate(&outcomes);
        assert_eq!(stats.num_chains, 3);
        assert!((stats.avg_anomaly_len - 8.0 / 3.0).abs() < 1e-12);
        assert!((stats.pct_detected - 2.0 / 3.0).abs() < 1e-12);
        assert!((stats.pct_tracked - 1.0 / 3.0).abs() < 1e-12);
        assert!((stats.avg_detection_len - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "no chain outcomes")]
    fn empty_chain_aggregate_panics() {
        ChainStats::aggregate(&[]);
    }
}
