//! Statistical substrate for the CausalIoT reproduction.
//!
//! The paper's pipeline leans on a handful of classical statistical tools,
//! all implemented here from scratch:
//!
//! * [`gamma`] — log-gamma and the regularised incomplete gamma function,
//!   the numerical bedrock for χ² tail probabilities,
//! * [`chi2`] — the χ² distribution (CDF / survival function),
//! * [`contingency`] — conditioning-stratified 2×2 contingency tables over
//!   binary variables,
//! * [`gsquare`] — the G² conditional-independence test used by TemporalPC
//!   (Section V-B),
//! * [`jenks`] — Jenks natural-breaks discretisation for ambient numeric
//!   states (Section V-A),
//! * [`threesigma`] — the three-sigma extreme-value filter (Section V-A),
//! * [`percentile`] — percentile estimation for the score-threshold
//!   calculator (Section V-C),
//! * [`metrics`] — detection-accuracy metrics (accuracy, precision, recall,
//!   F1) and collective-chain tracking metrics used across the evaluation.
//!
//! # Example: a conditional-independence test
//!
//! ```
//! use iot_stats::gsquare::{g_square_test, Observation};
//!
//! // X and Y perfectly correlated: dependence should be detected.
//! let obs: Vec<Observation> = (0..200)
//!     .map(|i| Observation { x: i % 2 == 0, y: i % 2 == 0, z_code: 0 })
//!     .collect();
//! let result = g_square_test(obs.iter().copied(), 1);
//! assert!(result.p_value < 0.001);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chi2;
pub mod contingency;
pub mod gamma;
pub mod gsquare;
pub mod jenks;
pub mod metrics;
pub mod percentile;
pub mod threesigma;
