//! Conditioning-stratified 2×2 contingency tables over binary variables.
//!
//! The G² conditional-independence test of TemporalPC compares two binary
//! variables `X` and `Y` within every assignment of a conditioning set `Z`.
//! Each distinct assignment of `Z` (encoded as an integer `z_code`) gets its
//! own 2×2 table of joint counts.

/// One 2×2 table of joint counts for a single conditioning stratum.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Table2x2 {
    counts: [[u64; 2]; 2],
}

impl Table2x2 {
    /// Creates an empty table.
    pub fn new() -> Self {
        Table2x2::default()
    }

    /// Creates a table from explicit counts `[[n00, n01], [n10, n11]]`
    /// (first index is `x`, second is `y`).
    pub fn from_counts(counts: [[u64; 2]; 2]) -> Self {
        Table2x2 { counts }
    }

    /// Records one observation.
    pub fn record(&mut self, x: bool, y: bool) {
        self.counts[x as usize][y as usize] += 1;
    }

    /// The joint count `N(x, y)`.
    pub fn count(&self, x: bool, y: bool) -> u64 {
        self.counts[x as usize][y as usize]
    }

    /// Row margin `N(x, ·)`.
    pub fn row_margin(&self, x: bool) -> u64 {
        self.counts[x as usize][0] + self.counts[x as usize][1]
    }

    /// Column margin `N(·, y)`.
    pub fn col_margin(&self, y: bool) -> u64 {
        self.counts[0][y as usize] + self.counts[1][y as usize]
    }

    /// Total number of observations in the stratum.
    pub fn total(&self) -> u64 {
        self.counts[0][0] + self.counts[0][1] + self.counts[1][0] + self.counts[1][1]
    }

    /// Whether both variables actually vary in this stratum (all four
    /// margins positive). Degenerate strata contribute neither to the G²
    /// statistic nor to the degrees of freedom.
    pub fn is_informative(&self) -> bool {
        self.total() > 0
            && self.row_margin(false) > 0
            && self.row_margin(true) > 0
            && self.col_margin(false) > 0
            && self.col_margin(true) > 0
    }

    /// This stratum's contribution to Pearson's χ² statistic:
    /// `Σ_xy (N(x,y) − E(x,y))² / E(x,y)` with `E = N(x,·)·N(·,y)/N`.
    ///
    /// An alternative to [`Table2x2::g_statistic`]; both are asymptotically
    /// χ²-distributed under the independence null. Pearson's variant is
    /// less sensitive to tiny expected counts in one direction and is the
    /// classical choice in many PC implementations.
    pub fn chi2_statistic(&self) -> f64 {
        let total = self.total() as f64;
        if total == 0.0 {
            return 0.0;
        }
        let mut x2 = 0.0;
        for x in [false, true] {
            for y in [false, true] {
                let expected = self.row_margin(x) as f64 * self.col_margin(y) as f64 / total;
                if expected > 0.0 {
                    let diff = self.count(x, y) as f64 - expected;
                    x2 += diff * diff / expected;
                }
            }
        }
        x2
    }

    /// This stratum's contribution to the G² statistic:
    /// `2 Σ_xy N(x,y) ln( N(x,y)·N / (N(x,·)·N(·,y)) )`.
    ///
    /// Cells with zero observed count contribute zero (the `N ln N` limit).
    pub fn g_statistic(&self) -> f64 {
        let total = self.total() as f64;
        if total == 0.0 {
            return 0.0;
        }
        let mut g = 0.0;
        for x in [false, true] {
            for y in [false, true] {
                let n = self.count(x, y) as f64;
                if n == 0.0 {
                    continue;
                }
                let expected = self.row_margin(x) as f64 * self.col_margin(y) as f64 / total;
                g += n * (n / expected).ln();
            }
        }
        2.0 * g
    }
}

/// A family of 2×2 tables, one per conditioning-set assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StratifiedTable {
    strata: Vec<Table2x2>,
}

impl StratifiedTable {
    /// Creates a table family with `num_strata` strata (use
    /// `2^|Z|` for a binary conditioning set of size `|Z|`).
    ///
    /// # Panics
    ///
    /// Panics if `num_strata == 0`.
    pub fn new(num_strata: usize) -> Self {
        assert!(num_strata > 0, "need at least one stratum");
        StratifiedTable {
            strata: vec![Table2x2::new(); num_strata],
        }
    }

    /// Builds the family from pre-computed strata.
    ///
    /// # Panics
    ///
    /// Panics if `strata` is empty.
    pub fn from_strata(strata: Vec<Table2x2>) -> Self {
        assert!(!strata.is_empty(), "need at least one stratum");
        StratifiedTable { strata }
    }

    /// Records one observation in stratum `z_code`.
    ///
    /// # Panics
    ///
    /// Panics if `z_code` is out of range.
    pub fn record(&mut self, x: bool, y: bool, z_code: usize) {
        self.strata[z_code].record(x, y);
    }

    /// Number of strata.
    pub fn num_strata(&self) -> usize {
        self.strata.len()
    }

    /// Read access to one stratum.
    pub fn stratum(&self, z_code: usize) -> &Table2x2 {
        &self.strata[z_code]
    }

    /// Total observations across all strata.
    pub fn total(&self) -> u64 {
        self.strata.iter().map(Table2x2::total).sum()
    }

    /// The G² statistic summed over strata and the *effective* degrees of
    /// freedom: each informative stratum contributes
    /// `(|X|−1)(|Y|−1) = 1` dof; degenerate strata contribute none. This is
    /// the standard dof adjustment for sparse discrete CI testing.
    pub fn g_statistic_and_dof(&self) -> (f64, u64) {
        let mut g = 0.0;
        let mut dof = 0;
        for stratum in &self.strata {
            if stratum.is_informative() {
                g += stratum.g_statistic();
                dof += 1;
            }
        }
        (g, dof)
    }

    /// Pearson's χ² statistic summed over informative strata, with the
    /// same effective-dof accounting as
    /// [`StratifiedTable::g_statistic_and_dof`].
    pub fn chi2_statistic_and_dof(&self) -> (f64, u64) {
        let mut x2 = 0.0;
        let mut dof = 0;
        for stratum in &self.strata {
            if stratum.is_informative() {
                x2 += stratum.chi2_statistic();
                dof += 1;
            }
        }
        (x2, dof)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn margins_and_totals() {
        let mut t = Table2x2::new();
        t.record(false, false);
        t.record(false, true);
        t.record(true, true);
        t.record(true, true);
        assert_eq!(t.total(), 4);
        assert_eq!(t.row_margin(false), 2);
        assert_eq!(t.row_margin(true), 2);
        assert_eq!(t.col_margin(true), 3);
        assert_eq!(t.count(true, true), 2);
    }

    #[test]
    fn independence_gives_zero_g() {
        // Perfectly proportional table: G = 0.
        let t = Table2x2::from_counts([[10, 20], [20, 40]]);
        assert!(t.g_statistic().abs() < 1e-9);
    }

    #[test]
    fn perfect_dependence_gives_large_g() {
        let t = Table2x2::from_counts([[50, 0], [0, 50]]);
        // G = 2 * 100 * ln 2 for a perfectly diagonal table.
        let expected = 2.0 * 100.0 * 2f64.ln();
        assert!((t.g_statistic() - expected).abs() < 1e-9);
    }

    #[test]
    fn degenerate_strata_excluded_from_dof() {
        let mut st = StratifiedTable::new(2);
        // Stratum 0: informative.
        st.record(false, false, 0);
        st.record(false, true, 0);
        st.record(true, false, 0);
        st.record(true, true, 0);
        // Stratum 1: x never varies -> degenerate.
        st.record(true, false, 1);
        st.record(true, true, 1);
        let (_, dof) = st.g_statistic_and_dof();
        assert_eq!(dof, 1);
        assert!(!st.stratum(1).is_informative());
        assert!(st.stratum(0).is_informative());
    }

    #[test]
    fn empty_table_is_harmless() {
        let t = Table2x2::new();
        assert_eq!(t.g_statistic(), 0.0);
        assert!(!t.is_informative());
        let st = StratifiedTable::new(4);
        let (g, dof) = st.g_statistic_and_dof();
        assert_eq!(g, 0.0);
        assert_eq!(dof, 0);
        assert_eq!(st.total(), 0);
    }

    #[test]
    #[should_panic(expected = "stratum")]
    fn zero_strata_rejected() {
        StratifiedTable::new(0);
    }

    #[test]
    fn pearson_agrees_with_g_on_independence_and_dependence() {
        let independent = Table2x2::from_counts([[10, 20], [20, 40]]);
        assert!(independent.chi2_statistic().abs() < 1e-9);
        let dependent = Table2x2::from_counts([[50, 5], [5, 50]]);
        assert!(dependent.chi2_statistic() > 30.0);
        assert!(dependent.g_statistic() > 30.0);
    }

    #[test]
    fn pearson_textbook_value() {
        // Classic 2x2: chi2 = N (ad - bc)^2 / (r1 r2 c1 c2).
        let t = Table2x2::from_counts([[10, 20], [30, 40]]);
        let n = 100.0f64;
        let expected = n * (10.0 * 40.0 - 20.0 * 30.0f64).powi(2) / (30.0 * 70.0 * 40.0 * 60.0);
        assert!((t.chi2_statistic() - expected).abs() < 1e-9);
    }

    #[test]
    fn stratified_pearson_dof_matches_g() {
        let mut st = StratifiedTable::new(2);
        for _ in 0..5 {
            st.record(false, false, 0);
            st.record(true, true, 0);
            st.record(false, true, 0);
            st.record(true, false, 0);
        }
        st.record(true, true, 1); // degenerate stratum
        let (_, dof_g) = st.g_statistic_and_dof();
        let (_, dof_x2) = st.chi2_statistic_and_dof();
        assert_eq!(dof_g, dof_x2);
        assert_eq!(dof_g, 1);
    }
}
