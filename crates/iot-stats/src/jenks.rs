//! Jenks natural-breaks classification (Section V-A, "Type unification").
//!
//! The preprocessor discretises *ambient numeric* device states (e.g.
//! brightness readings) into Low/High binary states using Jenks natural
//! breaks — the 1-D dynamic-programming optimisation (Fisher–Jenks) that
//! minimises within-class variance.

use serde::{Deserialize, Serialize};

/// Computes the optimal Jenks natural breaks for `num_classes` classes.
///
/// Returns the `num_classes − 1` interior break values: class `c` contains
/// the values `v` with `breaks[c-1] < v <= breaks[c]` (with virtual
/// sentinels at ±∞). Values need not be sorted or unique.
///
/// Runs the exact Fisher–Jenks dynamic programme in
/// `O(num_classes · n²)` time; callers with very large inputs should
/// subsample first (see [`JenksBinarizer::fit`]).
///
/// # Panics
///
/// Panics if `num_classes == 0`, if `values` has fewer elements than
/// `num_classes`, or if any value is not finite.
///
/// # Example
///
/// ```
/// let values = [1.0, 1.2, 0.9, 10.0, 10.5, 9.8];
/// let breaks = iot_stats::jenks::jenks_breaks(&values, 2);
/// assert_eq!(breaks.len(), 1);
/// assert!(breaks[0] >= 1.2 && breaks[0] < 9.8);
/// ```
pub fn jenks_breaks(values: &[f64], num_classes: usize) -> Vec<f64> {
    assert!(num_classes > 0, "need at least one class");
    assert!(
        values.len() >= num_classes,
        "need at least as many values as classes"
    );
    assert!(
        values.iter().all(|v| v.is_finite()),
        "values must be finite"
    );
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let n = sorted.len();

    // Prefix sums for O(1) within-class SSE.
    let mut prefix = vec![0.0f64; n + 1];
    let mut prefix_sq = vec![0.0f64; n + 1];
    for (i, &v) in sorted.iter().enumerate() {
        prefix[i + 1] = prefix[i] + v;
        prefix_sq[i + 1] = prefix_sq[i] + v * v;
    }
    // SSE of sorted[i..j] (half-open).
    let sse = |i: usize, j: usize| -> f64 {
        let len = (j - i) as f64;
        if len <= 1.0 {
            return 0.0;
        }
        let sum = prefix[j] - prefix[i];
        let sum_sq = prefix_sq[j] - prefix_sq[i];
        (sum_sq - sum * sum / len).max(0.0)
    };

    // dp[j] = best cost covering sorted[0..j] with the current class count.
    let mut dp: Vec<f64> = (0..=n).map(|j| sse(0, j)).collect();
    let mut splits = vec![vec![0usize; n + 1]; num_classes];
    // The DP recurrence indexes three tables by (c, i, j) at once; plain
    // index loops state it more directly than chained iterators would.
    #[allow(clippy::needless_range_loop)]
    for c in 1..num_classes {
        let mut next = vec![f64::INFINITY; n + 1];
        // A valid partition needs at least one element per class.
        for j in (c + 1)..=n {
            for i in c..j {
                let cost = dp[i] + sse(i, j);
                if cost < next[j] {
                    next[j] = cost;
                    splits[c][j] = i;
                }
            }
        }
        dp = next;
    }

    // Walk the split table back to recover break positions.
    let mut breaks_idx = Vec::with_capacity(num_classes - 1);
    let mut j = n;
    for c in (1..num_classes).rev() {
        let i = splits[c][j];
        breaks_idx.push(i);
        j = i;
    }
    breaks_idx.reverse();
    breaks_idx.iter().map(|&i| sorted[i - 1]).collect()
}

/// A fitted two-class (Low/High) Jenks discretiser for one ambient-numeric
/// device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JenksBinarizer {
    threshold: f64,
}

impl JenksBinarizer {
    /// Cap on the number of samples fed into the exact DP; larger inputs
    /// are deterministically strided down to this size.
    pub const MAX_FIT_SAMPLES: usize = 2048;

    /// Fits a Low/High threshold on training readings.
    ///
    /// Degenerate inputs (fewer than two distinct values) get a threshold
    /// at the single value, classifying everything as Low.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or contains non-finite readings.
    pub fn fit(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "cannot fit on an empty sample");
        let distinct = {
            let mut v = values.to_vec();
            v.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
            v.dedup();
            v
        };
        if distinct.len() < 2 {
            return JenksBinarizer {
                threshold: distinct[0],
            };
        }
        let sample: Vec<f64> = if values.len() > Self::MAX_FIT_SAMPLES {
            let stride = values.len() as f64 / Self::MAX_FIT_SAMPLES as f64;
            (0..Self::MAX_FIT_SAMPLES)
                .map(|i| values[(i as f64 * stride) as usize])
                .collect()
        } else {
            values.to_vec()
        };
        let breaks = jenks_breaks(&sample, 2);
        // `breaks[0]` is the largest value of the Low class; place the
        // decision boundary in the middle of the gap to the High class so
        // unseen readings between the clusters classify sensibly.
        let lower_max = breaks[0];
        let upper_min = sample
            .iter()
            .copied()
            .filter(|&v| v > lower_max)
            .fold(f64::INFINITY, f64::min);
        let threshold = if upper_min.is_finite() {
            (lower_max + upper_min) / 2.0
        } else {
            lower_max
        };
        JenksBinarizer { threshold }
    }

    /// Creates a binarizer with an explicit threshold.
    pub fn with_threshold(threshold: f64) -> Self {
        JenksBinarizer { threshold }
    }

    /// The fitted Low/High boundary (values `> threshold` are High).
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Classifies a reading: `true` = High, `false` = Low.
    pub fn is_high(&self, value: f64) -> bool {
        value > self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_obvious_clusters() {
        let values = [0.5, 1.0, 1.5, 100.0, 101.0, 99.0];
        let b = jenks_breaks(&values, 2);
        assert_eq!(b.len(), 1);
        assert!(b[0] >= 1.5 && b[0] < 99.0, "break = {}", b[0]);
    }

    #[test]
    fn three_clusters() {
        let values = [1.0, 2.0, 1.5, 50.0, 51.0, 49.5, 100.0, 101.0];
        let b = jenks_breaks(&values, 3);
        assert_eq!(b.len(), 2);
        assert!(b[0] >= 2.0 && b[0] < 49.5);
        assert!(b[1] >= 51.0 && b[1] < 100.0);
    }

    #[test]
    fn single_class_has_no_breaks() {
        assert!(jenks_breaks(&[1.0, 2.0, 3.0], 1).is_empty());
    }

    #[test]
    fn breaks_minimise_within_class_variance() {
        // The optimal 2-class split of {0,1,2, 10,11,12} separates the
        // halves; any other split has strictly higher SSE.
        let values = [0.0, 1.0, 2.0, 10.0, 11.0, 12.0];
        let b = jenks_breaks(&values, 2);
        assert!(b[0] >= 2.0 && b[0] < 10.0);
    }

    #[test]
    fn binarizer_classifies_brightness() {
        // Night readings near 5 lux, day readings near 300 lux.
        let mut readings = Vec::new();
        for i in 0..50 {
            readings.push(4.0 + (i % 5) as f64 * 0.5);
            readings.push(290.0 + (i % 7) as f64 * 3.0);
        }
        let bin = JenksBinarizer::fit(&readings);
        assert!(!bin.is_high(6.0));
        assert!(bin.is_high(280.0));
        assert!(bin.threshold() > 6.0 && bin.threshold() < 290.0);
    }

    #[test]
    fn binarizer_handles_constant_input() {
        let bin = JenksBinarizer::fit(&[42.0, 42.0, 42.0]);
        assert!(!bin.is_high(42.0));
        assert!(bin.is_high(43.0));
    }

    #[test]
    fn binarizer_subsamples_large_inputs() {
        let readings: Vec<f64> = (0..10_000)
            .map(|i| {
                if i % 2 == 0 {
                    1.0 + (i % 10) as f64 * 0.01
                } else {
                    200.0 + (i % 10) as f64
                }
            })
            .collect();
        let bin = JenksBinarizer::fit(&readings);
        assert!(!bin.is_high(2.0));
        assert!(bin.is_high(199.0));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan() {
        jenks_breaks(&[1.0, f64::NAN], 2);
    }
}
