//! Log-gamma and the regularised incomplete gamma function.
//!
//! These are the numerical primitives behind the χ² tail probabilities used
//! by the G² test. The implementations follow the classical Lanczos
//! approximation and the series/continued-fraction split popularised by
//! *Numerical Recipes* (`gammp`/`gammq`), accurate to ~1e-12 over the ranges
//! exercised here.

/// Lanczos coefficients (g = 7, n = 9), double precision.
// The published coefficients carry more digits than f64 resolves; keep
// them verbatim so the table matches the literature.
#[allow(clippy::excessive_precision)]
const LANCZOS: [f64; 9] = [
    0.999_999_999_999_809_93,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_13,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_571_6e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural log of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// # Panics
///
/// Panics if `x <= 0` (the reflection branch is not needed by this crate).
///
/// # Example
///
/// ```
/// // Γ(5) = 24
/// let ln24 = iot_stats::gamma::ln_gamma(5.0);
/// assert!((ln24 - 24f64.ln()).abs() < 1e-12);
/// ```
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    let mut sum = LANCZOS[0];
    for (i, &c) in LANCZOS.iter().enumerate().skip(1) {
        sum += c / (x + i as f64 - 1.0);
    }
    let t = x + 6.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x - 0.5) * t.ln() - t + sum.ln()
}

/// Maximum iterations for the series / continued-fraction evaluation.
const MAX_ITER: usize = 500;
const EPS: f64 = 1e-14;
const FPMIN: f64 = 1e-300;

/// Lower regularised incomplete gamma `P(a, x) = γ(a, x) / Γ(a)`.
///
/// `P(a, 0) = 0` and `P(a, ∞) = 1`.
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
pub fn regularized_gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "invalid arguments a={a}, x={x}");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Upper regularised incomplete gamma `Q(a, x) = 1 − P(a, x)`.
///
/// Computed directly in the continued-fraction regime so that tiny tail
/// probabilities do not lose precision to cancellation.
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
pub fn regularized_gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "invalid arguments a={a}, x={x}");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

/// Series representation of `P(a, x)`, converges fast for `x < a + 1`.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * EPS {
            break;
        }
    }
    (sum * (-x + a * x.ln() - ln_gamma(a)).exp()).clamp(0.0, 1.0)
}

/// Continued-fraction representation of `Q(a, x)` (modified Lentz),
/// converges fast for `x ≥ a + 1`.
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    ((-x + a * x.ln() - ln_gamma(a)).exp() * h).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        let mut fact = 1.0f64;
        for n in 1..=15u32 {
            if n > 1 {
                fact *= (n - 1) as f64;
            }
            assert!(
                (ln_gamma(n as f64) - fact.ln()).abs() < 1e-10,
                "ln_gamma({n})"
            );
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = sqrt(pi)
        let expected = std::f64::consts::PI.sqrt().ln();
        assert!((ln_gamma(0.5) - expected).abs() < 1e-12);
        // Γ(3/2) = sqrt(pi)/2
        let expected = (std::f64::consts::PI.sqrt() / 2.0).ln();
        assert!((ln_gamma(1.5) - expected).abs() < 1e-12);
    }

    #[test]
    fn p_plus_q_is_one() {
        for &a in &[0.5, 1.0, 2.5, 10.0, 50.0] {
            for &x in &[0.01, 0.5, 1.0, 3.0, 10.0, 80.0] {
                let p = regularized_gamma_p(a, x);
                let q = regularized_gamma_q(a, x);
                assert!((p + q - 1.0).abs() < 1e-10, "a={a} x={x}");
            }
        }
    }

    #[test]
    fn known_values() {
        // P(1, x) = 1 - e^{-x} (exponential CDF).
        for &x in &[0.1f64, 1.0, 2.0, 5.0] {
            let expected = 1.0 - (-x).exp();
            assert!((regularized_gamma_p(1.0, x) - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn boundaries() {
        assert_eq!(regularized_gamma_p(3.0, 0.0), 0.0);
        assert_eq!(regularized_gamma_q(3.0, 0.0), 1.0);
        assert!(regularized_gamma_p(1.0, 700.0) > 1.0 - 1e-12);
        assert!(regularized_gamma_q(1.0, 700.0) < 1e-12);
    }

    #[test]
    fn monotone_in_x() {
        let mut prev = 0.0;
        for i in 1..100 {
            let x = i as f64 * 0.3;
            let p = regularized_gamma_p(4.0, x);
            assert!(p >= prev, "P(4, x) must be non-decreasing");
            prev = p;
        }
    }

    #[test]
    #[should_panic(expected = "invalid arguments")]
    fn rejects_negative_x() {
        regularized_gamma_p(1.0, -1.0);
    }
}
