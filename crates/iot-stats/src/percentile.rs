//! Percentile estimation for the score-threshold calculator (Section V-C).
//!
//! The Event Monitor ranks the anomaly scores of all logged (training)
//! events and picks the q-th percentile as the contextual-anomaly threshold
//! `c`; `q` encodes the confidence that the training log is anomaly-free
//! (the paper uses `q = 99`).

/// Computes the `q`-th percentile of `values` with linear interpolation
/// between order statistics (the common "type 7" estimator).
///
/// `q` is in percent, `0.0 ..= 100.0`.
///
/// # Panics
///
/// Panics if `values` is empty, `q` is outside `[0, 100]`, or any value is
/// NaN.
///
/// # Example
///
/// ```
/// let scores = vec![0.1, 0.2, 0.3, 0.4];
/// assert_eq!(iot_stats::percentile::percentile(&scores, 50.0), 0.25);
/// assert_eq!(iot_stats::percentile::percentile(&scores, 100.0), 0.4);
/// ```
pub fn percentile(values: &[f64], q: f64) -> f64 {
    assert!(!values.is_empty(), "percentile of an empty sample");
    assert!((0.0..=100.0).contains(&q), "q must be in [0, 100]");
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("values must not be NaN"));
    percentile_of_sorted(&sorted, q)
}

/// Like [`percentile`] but assumes `sorted` is already ascending
/// (unchecked; results are meaningless otherwise).
///
/// # Panics
///
/// Panics if `sorted` is empty or `q` is outside `[0, 100]`.
pub fn percentile_of_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of an empty sample");
    assert!((0.0..=100.0).contains(&q), "q must be in [0, 100]");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = q / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] + (sorted[hi] - sorted[lo]) * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints() {
        let v = [3.0, 1.0, 2.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 3.0);
        assert_eq!(percentile(&v, 50.0), 2.0);
    }

    #[test]
    fn interpolates() {
        let v = [0.0, 10.0];
        assert_eq!(percentile(&v, 25.0), 2.5);
        assert_eq!(percentile(&v, 75.0), 7.5);
    }

    #[test]
    fn single_element() {
        assert_eq!(percentile(&[5.0], 37.0), 5.0);
    }

    #[test]
    fn q99_on_large_sample() {
        let v: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let p = percentile(&v, 99.0);
        assert!((p - 989.01).abs() < 1e-9);
    }

    #[test]
    fn unsorted_input_is_sorted_internally() {
        let v = [9.0, 1.0, 5.0, 3.0, 7.0];
        assert_eq!(percentile(&v, 50.0), 5.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_panics() {
        percentile(&[], 50.0);
    }

    #[test]
    #[should_panic(expected = "q must be")]
    fn out_of_range_q_panics() {
        percentile(&[1.0], 101.0);
    }
}
