//! The three-sigma extreme-value rule (Section V-A, "Event sanitation").
//!
//! The preprocessor estimates a numeric device's mean `μ` and standard
//! deviation `σ` and filters readings outside `[μ − 3σ, μ + 3σ]` as extreme
//! values.

use serde::{Deserialize, Serialize};

/// Streaming mean/variance accumulator (Welford's algorithm).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats::default()
    }

    /// Feeds one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (`0.0` with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

impl FromIterator<f64> for RunningStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut stats = RunningStats::new();
        for x in iter {
            stats.push(x);
        }
        stats
    }
}

/// A fitted three-sigma band `[μ − 3σ, μ + 3σ]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThreeSigmaBand {
    lo: f64,
    hi: f64,
}

impl ThreeSigmaBand {
    /// Fits the band on a sample.
    ///
    /// # Panics
    ///
    /// Panics if the sample is empty.
    pub fn fit(values: impl IntoIterator<Item = f64>) -> Self {
        let stats: RunningStats = values.into_iter().collect();
        assert!(stats.count() > 0, "cannot fit a band on an empty sample");
        ThreeSigmaBand::from_stats(&stats)
    }

    /// Builds the band from an already-computed accumulator.
    pub fn from_stats(stats: &RunningStats) -> Self {
        let sigma = stats.std_dev();
        ThreeSigmaBand {
            lo: stats.mean() - 3.0 * sigma,
            hi: stats.mean() + 3.0 * sigma,
        }
    }

    /// Reassembles a band from persisted bounds (the inverse of reading
    /// [`ThreeSigmaBand::lo`]/[`ThreeSigmaBand::hi`] back).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn from_bounds(lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "band lower bound {lo} exceeds upper bound {hi}");
        ThreeSigmaBand { lo, hi }
    }

    /// Lower bound `μ − 3σ`.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound `μ + 3σ`.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Whether a reading violates the three-sigma rule (is an extreme value
    /// the sanitiser should drop).
    pub fn is_extreme(&self, value: f64) -> bool {
        value < self.lo || value > self.hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_direct_computation() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let stats: RunningStats = data.iter().copied().collect();
        assert_eq!(stats.count(), 8);
        assert!((stats.mean() - 5.0).abs() < 1e-12);
        assert!((stats.variance() - 4.0).abs() < 1e-12);
        assert!((stats.std_dev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_single_sample() {
        let stats = RunningStats::new();
        assert_eq!(stats.mean(), 0.0);
        assert_eq!(stats.variance(), 0.0);
        let one: RunningStats = [3.5].into_iter().collect();
        assert_eq!(one.mean(), 3.5);
        assert_eq!(one.variance(), 0.0);
    }

    #[test]
    fn band_flags_extremes() {
        // Mean 5, sigma 2 -> band [-1, 11].
        let band = ThreeSigmaBand::fit([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((band.lo() - -1.0).abs() < 1e-9);
        assert!((band.hi() - 11.0).abs() < 1e-9);
        assert!(band.is_extreme(12.0));
        assert!(band.is_extreme(-2.0));
        assert!(!band.is_extreme(11.0));
        assert!(!band.is_extreme(5.0));
    }

    #[test]
    fn constant_data_gives_point_band() {
        let band = ThreeSigmaBand::fit([7.0, 7.0, 7.0]);
        assert!(!band.is_extreme(7.0));
        assert!(band.is_extreme(7.1));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_band_panics() {
        ThreeSigmaBand::fit(std::iter::empty());
    }
}
