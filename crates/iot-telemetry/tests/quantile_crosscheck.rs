//! Cross-checks the fixed-bucket histogram's quantile estimates against
//! the exact order-statistic percentiles of `iot-stats` on identical
//! samples. Bucket estimation interpolates within one bucket, so the
//! estimate must land within one bucket width of the exact value (and
//! must clamp to the observed min/max at the extremes).

use iot_stats::percentile::percentile;
use iot_telemetry::{Buckets, Histogram};

/// A deterministic pseudo-random stream (SplitMix64) so the test needs no
/// external RNG.
fn splitmix_stream(seed: u64, len: usize) -> Vec<u64> {
    let mut state = seed;
    (0..len)
        .map(|_| {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        })
        .collect()
}

fn crosscheck(samples: &[f64], hist: &Histogram, bucket_width: f64) {
    for &value in samples {
        hist.observe(value);
    }
    let snapshot = hist.snapshot();
    assert_eq!(snapshot.count, samples.len() as u64);
    for &q in &[0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
        let exact = percentile(samples, q * 100.0);
        let estimated = snapshot.quantile(q);
        assert!(
            (estimated - exact).abs() <= bucket_width,
            "q={q}: histogram estimate {estimated} vs exact {exact} \
             (allowed error {bucket_width})"
        );
    }
    // The extremes clamp to the observed range exactly.
    assert_eq!(snapshot.quantile(0.0), percentile(samples, 0.0));
    assert_eq!(snapshot.quantile(1.0), percentile(samples, 100.0));
}

#[test]
fn uniform_samples_linear_buckets() {
    let samples: Vec<f64> = splitmix_stream(7, 5_000)
        .into_iter()
        .map(|bits| (bits >> 11) as f64 / (1u64 << 53) as f64)
        .collect();
    let hist = Histogram::with_buckets(Buckets::linear(0.0, 1.0, 20));
    crosscheck(&samples, &hist, 0.05);
}

#[test]
fn skewed_samples_exponential_buckets() {
    // Latency-like heavy-tailed samples in [1, ~1e6).
    let samples: Vec<f64> = splitmix_stream(42, 5_000)
        .into_iter()
        .map(|bits| {
            let unit = (bits >> 11) as f64 / (1u64 << 53) as f64;
            10f64.powf(6.0 * unit)
        })
        .collect();
    let hist = Histogram::with_buckets(Buckets::exponential(1.0, 2.0, 24));
    for &value in &samples {
        hist.observe(value);
    }
    let snapshot = hist.snapshot();
    // Exponential buckets double in width: the estimate must stay within
    // a factor of two of the exact percentile.
    for &q in &[0.25, 0.5, 0.9, 0.99] {
        let exact = percentile(&samples, q * 100.0);
        let estimated = snapshot.quantile(q);
        let ratio = estimated / exact;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "q={q}: histogram estimate {estimated} vs exact {exact} (ratio {ratio})"
        );
    }
}

#[test]
fn constant_samples_collapse_to_the_constant() {
    let samples = vec![3.25; 100];
    let hist = Histogram::with_buckets(Buckets::linear(0.0, 10.0, 10));
    crosscheck(&samples, &hist, 1.0);
    assert_eq!(hist.snapshot().quantile(0.5), 3.25);
}
