//! Serialisable run reports: [`FitReport`] for a model fit,
//! [`MonitorReport`] for a monitoring session.
//!
//! Both render to JSON through the crate's hand-rolled writer, so the
//! whole telemetry layer stays dependency-free. The experiment binaries
//! drop these under `results/telemetry/`, and
//! `scripts/bench_snapshot.sh` turns them into `BENCH_<date>.json`
//! perf-trajectory entries.

use crate::json::JsonValue;
use crate::metrics::HistogramSnapshot;

/// Five-point summary of an observed distribution.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DistributionSummary {
    /// Number of samples.
    pub count: u64,
    /// Arithmetic mean (`NAN` when empty).
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl DistributionSummary {
    /// Summarises a slice of raw samples (exact percentiles by sorting).
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return DistributionSummary {
                count: 0,
                mean: f64::NAN,
                min: f64::NAN,
                p50: f64::NAN,
                p90: f64::NAN,
                p99: f64::NAN,
                max: f64::NAN,
            };
        }
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
        let at = |q: f64| {
            let rank = q * (sorted.len() as f64 - 1.0);
            let lo = rank.floor() as usize;
            let hi = rank.ceil() as usize;
            let w = rank - lo as f64;
            sorted[lo] * (1.0 - w) + sorted[hi] * w
        };
        DistributionSummary {
            count: sorted.len() as u64,
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            min: sorted[0],
            p50: at(0.5),
            p90: at(0.9),
            p99: at(0.99),
            max: *sorted.last().unwrap(),
        }
    }

    /// Summarises a histogram snapshot (percentiles are bucket-estimated).
    pub fn from_histogram(snapshot: &HistogramSnapshot) -> Self {
        if snapshot.count == 0 {
            return Self::from_samples(&[]);
        }
        DistributionSummary {
            count: snapshot.count,
            mean: snapshot.mean(),
            min: snapshot.min,
            p50: snapshot.quantile(0.5),
            p90: snapshot.quantile(0.9),
            p99: snapshot.quantile(0.99),
            max: snapshot.max,
        }
    }

    /// The JSON object form.
    pub fn to_json(&self) -> JsonValue {
        let mut obj = JsonValue::object();
        obj.push("count", self.count)
            .push("mean", self.mean)
            .push("min", self.min)
            .push("p50", self.p50)
            .push("p90", self.p90)
            .push("p99", self.p99)
            .push("max", self.max);
        obj
    }
}

/// Preprocessing counts for one fit or transform pass.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PreprocessStats {
    /// Raw events offered to the preprocessor.
    pub events_in: u64,
    /// Binary events surviving preprocessing.
    pub events_out: u64,
    /// Events dropped as duplicated state reports.
    pub dropped_duplicate: u64,
    /// Events dropped by the three-sigma extreme filter.
    pub dropped_extreme: u64,
}

impl PreprocessStats {
    /// The JSON object form.
    pub fn to_json(&self) -> JsonValue {
        let mut obj = JsonValue::object();
        obj.push("events_in", self.events_in)
            .push("events_out", self.events_out)
            .push("dropped_duplicate", self.dropped_duplicate)
            .push("dropped_extreme", self.dropped_extreme);
        obj
    }
}

/// TemporalPC mining statistics, the Section V-D complexity unit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MiningStats {
    /// Total G²/χ² conditional-independence tests executed.
    pub ci_tests_total: u64,
    /// Tests per conditioning-set size `l = 0, 1, ...`.
    pub ci_tests_per_level: Vec<u64>,
    /// Candidate edges entering the PC search (devices × lags × outcomes).
    pub edges_considered: u64,
    /// Candidates removed by an independence test.
    pub edges_pruned: u64,
    /// Wall time per outcome device, milliseconds.
    pub per_outcome_ms: Vec<f64>,
}

impl MiningStats {
    /// The JSON object form.
    pub fn to_json(&self) -> JsonValue {
        let mut obj = JsonValue::object();
        obj.push("ci_tests_total", self.ci_tests_total)
            .push("ci_tests_per_level", self.ci_tests_per_level.clone())
            .push("edges_considered", self.edges_considered)
            .push("edges_pruned", self.edges_pruned)
            .push(
                "per_outcome_ms",
                JsonValue::Array(
                    self.per_outcome_ms
                        .iter()
                        .map(|&ms| JsonValue::Num(ms))
                        .collect(),
                ),
            );
        obj
    }
}

/// Wall time of each fit stage, milliseconds.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StageTimings {
    /// Sanitation + type-unification fit and transform.
    pub preprocess_ms: f64,
    /// τ selection.
    pub tau_ms: f64,
    /// TemporalPC skeleton discovery.
    pub mining_ms: f64,
    /// CPT estimation.
    pub cpt_ms: f64,
    /// Threshold calibration (training replay + percentile).
    pub threshold_ms: f64,
    /// End-to-end fit.
    pub total_ms: f64,
}

impl StageTimings {
    /// The JSON object form.
    pub fn to_json(&self) -> JsonValue {
        let mut obj = JsonValue::object();
        obj.push("preprocess_ms", self.preprocess_ms)
            .push("tau_ms", self.tau_ms)
            .push("mining_ms", self.mining_ms)
            .push("cpt_ms", self.cpt_ms)
            .push("threshold_ms", self.threshold_ms)
            .push("total_ms", self.total_ms);
        obj
    }
}

/// Everything observable about one model fit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FitReport {
    /// Devices covered by the model.
    pub num_devices: usize,
    /// The τ the model was mined with.
    pub tau: usize,
    /// The calibrated contextual-anomaly threshold.
    pub threshold: f64,
    /// Interactions (edges) in the mined DIG.
    pub num_interactions: usize,
    /// Preprocessing counts (zero when fitted on pre-binarised events).
    pub preprocess: PreprocessStats,
    /// Mining statistics.
    pub mining: MiningStats,
    /// Per-stage wall times.
    pub stages: StageTimings,
    /// Distribution of the calibration (training-replay) scores.
    pub calibration_scores: DistributionSummary,
}

impl FitReport {
    /// Renders the report as a compact JSON object.
    pub fn to_json(&self) -> String {
        let mut obj = JsonValue::object();
        obj.push("kind", "fit_report")
            .push("num_devices", self.num_devices)
            .push("tau", self.tau)
            .push("threshold", self.threshold)
            .push("num_interactions", self.num_interactions)
            .push("preprocess", self.preprocess.to_json())
            .push("mining", self.mining.to_json())
            .push("stage_times", self.stages.to_json())
            .push("calibration_scores", self.calibration_scores.to_json());
        obj.render()
    }

    /// A terse one-line human summary.
    pub fn summary_line(&self) -> String {
        format!(
            "fit: {} devices, tau {}, {} interactions, {} CI tests, {:.1} ms total, threshold {:.4}",
            self.num_devices,
            self.tau,
            self.num_interactions,
            self.mining.ci_tests_total,
            self.stages.total_ms,
            self.threshold
        )
    }
}

/// Everything observable about one monitoring session.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MonitorReport {
    /// Events scored by the detector.
    pub events_observed: u64,
    /// Raw events dropped as duplicated state reports.
    pub dropped_duplicate: u64,
    /// Raw events dropped as extreme readings.
    pub dropped_extreme: u64,
    /// Raw events dropped for non-finite (NaN/infinite) numeric readings.
    pub dropped_non_finite: u64,
    /// Contextual alarms raised.
    pub contextual_alarms: u64,
    /// Collective alarms raised.
    pub collective_alarms: u64,
    /// Longest tracked anomaly chain.
    pub max_tracking_len: u64,
    /// Per-event `observe` latency, microseconds.
    pub observe_latency_us: DistributionSummary,
    /// Runtime anomaly-score distribution.
    pub scores: DistributionSummary,
}

impl MonitorReport {
    /// Renders the report as a compact JSON object.
    pub fn to_json(&self) -> String {
        let mut obj = JsonValue::object();
        obj.push("kind", "monitor_report")
            .push("events_observed", self.events_observed)
            .push("dropped_duplicate", self.dropped_duplicate)
            .push("dropped_extreme", self.dropped_extreme)
            .push("dropped_non_finite", self.dropped_non_finite)
            .push("contextual_alarms", self.contextual_alarms)
            .push("collective_alarms", self.collective_alarms)
            .push("max_tracking_len", self.max_tracking_len)
            .push("observe_latency_us", self.observe_latency_us.to_json())
            .push("scores", self.scores.to_json());
        obj.render()
    }

    /// A terse multi-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "events observed   {}\n\
             drops             {} duplicate, {} extreme, {} non-finite\n\
             alarms            {} contextual, {} collective\n\
             observe latency   p50 {:.1} us, p99 {:.1} us\n\
             score percentiles p50 {:.4}, p99 {:.4}\n\
             max tracked chain {}",
            self.events_observed,
            self.dropped_duplicate,
            self.dropped_extreme,
            self.dropped_non_finite,
            self.contextual_alarms,
            self.collective_alarms,
            self.observe_latency_us.p50,
            self.observe_latency_us.p99,
            self.scores.p50,
            self.scores.p99,
            self.max_tracking_len
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summaries_from_samples_match_sorted_order() {
        let s = DistributionSummary::from_samples(&[3.0, 1.0, 2.0, 4.0, 5.0]);
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.p50, 3.0);
        assert!((s.mean - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_summary_is_nan_but_renders_null() {
        let s = DistributionSummary::from_samples(&[]);
        assert!(s.mean.is_nan());
        assert!(s.to_json().render().contains("\"mean\":null"));
    }

    #[test]
    fn fit_report_renders_valid_json_shape() {
        let report = FitReport {
            num_devices: 8,
            tau: 2,
            threshold: 0.97,
            num_interactions: 5,
            mining: MiningStats {
                ci_tests_total: 120,
                ci_tests_per_level: vec![100, 20],
                edges_considered: 128,
                edges_pruned: 123,
                per_outcome_ms: vec![1.5, 2.25],
            },
            ..FitReport::default()
        };
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"ci_tests_per_level\":[100,20]"), "{json}");
        assert!(json.contains("\"kind\":\"fit_report\""));
        assert!(!report.summary_line().is_empty());
    }
}
