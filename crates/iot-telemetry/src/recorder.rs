//! The flight recorder: a fixed-capacity ring of the most recent entries.
//!
//! A [`FlightRecorder`] keeps the last `capacity` records of whatever the
//! owner feeds it — the serving hub records one `(event, score, verdict)`
//! triple per scored event per home — so when something goes wrong the
//! evidence that led up to it is still in memory, bounded at
//! `capacity × homes` entries no matter how long the deployment runs.
//!
//! Concurrency model: the ring is **owned by its single writer** (the
//! shard worker that also owns the monitor), so the hot path is a plain
//! indexed store with no locks, no atomics, and no allocation after
//! warm-up. Readers never touch the live ring; they receive a
//! [`FlightRecorder::snapshot`] copy taken by the owner at a safe point
//! (the hub dumps at an event boundary via its own job queue).

/// A fixed-capacity ring buffer over the most recent `capacity` entries.
#[derive(Debug, Clone)]
pub struct FlightRecorder<T> {
    slots: Vec<T>,
    capacity: usize,
    /// Oldest entry (and next overwrite target) once the ring is full.
    head: usize,
    /// Entries ever recorded (≥ `slots.len()`).
    recorded: u64,
}

impl<T: Clone> FlightRecorder<T> {
    /// An empty recorder keeping the last `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "flight recorder needs capacity >= 1");
        FlightRecorder {
            slots: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            recorded: 0,
        }
    }

    /// Records one entry, evicting the oldest when full.
    #[inline]
    pub fn record(&mut self, entry: T) {
        if self.slots.len() < self.capacity {
            self.slots.push(entry);
        } else {
            self.slots[self.head] = entry;
            self.head = (self.head + 1) % self.capacity;
        }
        self.recorded += 1;
    }

    /// Entries currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries ever recorded, including those already evicted.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Copies the retained entries out, oldest first.
    pub fn snapshot(&self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.slots.len());
        out.extend_from_slice(&self.slots[self.head..]);
        out.extend_from_slice(&self.slots[..self.head]);
        out
    }

    /// Discards every retained entry (the lifetime total keeps counting).
    pub fn clear(&mut self) {
        self.slots.clear();
        self.head = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_the_last_n_in_order() {
        let mut ring = FlightRecorder::new(3);
        assert!(ring.is_empty());
        for i in 0..10 {
            ring.record(i);
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.capacity(), 3);
        assert_eq!(ring.recorded(), 10);
        assert_eq!(ring.snapshot(), vec![7, 8, 9]);
    }

    #[test]
    fn partial_fill_preserves_order() {
        let mut ring = FlightRecorder::new(5);
        ring.record("a");
        ring.record("b");
        assert_eq!(ring.snapshot(), vec!["a", "b"]);
        assert_eq!(ring.recorded(), 2);
    }

    #[test]
    fn exact_capacity_boundary() {
        let mut ring = FlightRecorder::new(2);
        ring.record(1);
        ring.record(2);
        assert_eq!(ring.snapshot(), vec![1, 2]);
        ring.record(3);
        assert_eq!(ring.snapshot(), vec![2, 3]);
    }

    #[test]
    fn clear_keeps_lifetime_total() {
        let mut ring = FlightRecorder::new(2);
        ring.record(1);
        ring.record(2);
        ring.clear();
        assert!(ring.is_empty());
        assert_eq!(ring.recorded(), 2);
        ring.record(3);
        assert_eq!(ring.snapshot(), vec![3]);
        assert_eq!(ring.recorded(), 3);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_is_rejected() {
        let _ = FlightRecorder::<u8>::new(0);
    }
}
