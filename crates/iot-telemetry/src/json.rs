//! A hand-rolled JSON writer — the telemetry crate must stay
//! dependency-free, and its reports only ever need *serialisation*.
//!
//! [`JsonValue`] is a plain tree; [`JsonValue::render`] emits compact
//! RFC 8259 JSON (non-finite numbers become `null`, object key order is
//! insertion order so reports are diffable).

use std::fmt::Write as _;

/// One JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any finite number (non-finite renders as `null`).
    Num(f64),
    /// An exact unsigned integer (u64 exceeds f64's exact range).
    Int(u64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// An empty object, ready for [`JsonValue::push`].
    pub fn object() -> Self {
        JsonValue::Object(Vec::new())
    }

    /// Appends a key to an object.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn push(&mut self, key: &str, value: impl Into<JsonValue>) -> &mut Self {
        match self {
            JsonValue::Object(fields) => fields.push((key.to_string(), value.into())),
            other => panic!("push on non-object {other:?}"),
        }
        self
    }

    /// Renders compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out);
        out
    }

    fn write_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Int(n) => {
                let _ = write!(out, "{n}");
            }
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_into(out);
                }
                out.push(']');
            }
            JsonValue::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.write_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> Self {
        JsonValue::Bool(b)
    }
}

impl From<f64> for JsonValue {
    fn from(x: f64) -> Self {
        JsonValue::Num(x)
    }
}

impl From<u64> for JsonValue {
    fn from(n: u64) -> Self {
        JsonValue::Int(n)
    }
}

impl From<usize> for JsonValue {
    fn from(n: usize) -> Self {
        JsonValue::Int(n as u64)
    }
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::Str(s.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(s: String) -> Self {
        JsonValue::Str(s)
    }
}

impl<T: Into<JsonValue>> From<Vec<T>> for JsonValue {
    fn from(items: Vec<T>) -> Self {
        JsonValue::Array(items.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let mut obj = JsonValue::object();
        obj.push("name", "fit \"report\"")
            .push("count", 3u64)
            .push("ratio", 0.5)
            .push("levels", vec![1u64, 2, 3])
            .push("ok", true)
            .push("none", JsonValue::Null);
        assert_eq!(
            obj.render(),
            r#"{"name":"fit \"report\"","count":3,"ratio":0.5,"levels":[1,2,3],"ok":true,"none":null}"#
        );
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(JsonValue::Num(f64::NAN).render(), "null");
        assert_eq!(JsonValue::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn control_characters_escaped() {
        assert_eq!(
            JsonValue::Str("a\nb\u{1}".to_string()).render(),
            "\"a\\nb\\u0001\""
        );
    }
}
