//! # iot-telemetry — zero-dependency observability for CausalIoT
//!
//! The fit/monitor pipeline is instrumented through a single cheap,
//! cloneable [`TelemetryHandle`]:
//!
//! * **Metrics** — a [`MetricsRegistry`] of atomic [`Counter`]s,
//!   [`Gauge`]s, and fixed-bucket [`Histogram`]s. Hot-path updates are
//!   lock-free; a disabled handle reduces every update to one branch.
//! * **Spans** — scoped wall-clock timers ([`TelemetryHandle::span`])
//!   feeding a pluggable [`Sink`]: no-op, in-memory summary, or JSONL.
//! * **Reports** — serialisable [`FitReport`] / [`MonitorReport`] structs
//!   with a hand-rolled JSON writer ([`json::JsonValue`]); no serde.
//!
//! ## Selecting a sink
//!
//! [`TelemetryHandle::from_env`] reads `CAUSALIOT_TELEMETRY`:
//!
//! | value            | behaviour                                        |
//! |------------------|--------------------------------------------------|
//! | unset / `off`    | disabled handle — near-zero overhead             |
//! | `metrics`        | live metrics, spans discarded ([`NoopSink`])     |
//! | `summary`        | live metrics + in-memory span aggregation        |
//! | `jsonl[:path]`   | live metrics + JSONL span/event log (default path `telemetry.jsonl`) |
//! | `chrome[:path]`  | live metrics + Chrome `trace_event` JSON for `chrome://tracing` / Perfetto (default path `trace.json`) |
//!
//! Live introspection rides on the same handle: [`render_prometheus`]
//! turns a [`TelemetryHandle::metrics_snapshot`] into the Prometheus text
//! format, [`MetricsServer`] serves it over HTTP for scrapers, and
//! [`FlightRecorder`] is the bounded evidence ring the serving hub keeps
//! per home.
//!
//! ```
//! use iot_telemetry::{Buckets, TelemetryHandle};
//!
//! let telemetry = TelemetryHandle::with_summary_sink();
//! let events = telemetry.counter("monitor.events");
//! let latency = telemetry.histogram("monitor.observe_latency_us",
//!     Buckets::exponential(1.0, 2.0, 20));
//! {
//!     let _span = telemetry.span("mining.total");
//!     events.inc();
//!     latency.observe(42.0);
//! }
//! assert_eq!(events.get(), 1);
//! assert!(telemetry.sink_summary().unwrap().contains("mining.total"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exporter;
pub mod json;
pub mod metrics;
pub mod recorder;
pub mod report;
pub mod sink;

pub use exporter::{render_prometheus, MetricsServer};
pub use metrics::{
    Buckets, Counter, Gauge, Histogram, HistogramSnapshot, MetricValue, MetricsRegistry,
};
pub use recorder::FlightRecorder;
pub use report::{
    DistributionSummary, FitReport, MiningStats, MonitorReport, PreprocessStats, StageTimings,
};
pub use sink::{ChromeTraceSink, JsonlSink, MemorySink, NoopSink, Sink};

use std::sync::Arc;
use std::time::Instant;

/// The environment variable selecting the telemetry sink.
pub const TELEMETRY_ENV: &str = "CAUSALIOT_TELEMETRY";

#[derive(Debug)]
struct Inner {
    registry: MetricsRegistry,
    sink: Box<dyn Sink>,
}

/// A cheap, cloneable handle to a metrics registry and a span sink.
///
/// A *disabled* handle (the default) carries no allocation at all; every
/// metric it hands out is a no-op and spans cost one `Option` check — so
/// the pipeline can be instrumented unconditionally.
#[derive(Debug, Clone, Default)]
pub struct TelemetryHandle {
    inner: Option<Arc<Inner>>,
}

impl TelemetryHandle {
    /// The no-op handle.
    pub fn disabled() -> Self {
        TelemetryHandle { inner: None }
    }

    /// A live handle with the given sink.
    pub fn new(sink: Box<dyn Sink>) -> Self {
        TelemetryHandle {
            inner: Some(Arc::new(Inner {
                registry: MetricsRegistry::new(),
                sink,
            })),
        }
    }

    /// A live handle that discards spans (metrics only).
    pub fn with_noop_sink() -> Self {
        Self::new(Box::new(NoopSink))
    }

    /// A live handle aggregating spans in memory (see
    /// [`TelemetryHandle::sink_summary`]).
    pub fn with_summary_sink() -> Self {
        Self::new(Box::new(MemorySink::new()))
    }

    /// A live handle writing spans/events as JSON lines to `path`.
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors.
    pub fn with_jsonl_sink(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        Ok(Self::new(Box::new(JsonlSink::create(path)?)))
    }

    /// A live handle writing spans/events as Chrome `trace_event` JSON to
    /// `path` (open it in `chrome://tracing` or Perfetto).
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors.
    pub fn with_chrome_sink(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        Ok(Self::new(Box::new(ChromeTraceSink::create(path)?)))
    }

    /// Builds a handle from `CAUSALIOT_TELEMETRY` (see the crate docs for
    /// the accepted values). Unknown values fall back to `summary` so a
    /// typo degrades to *more* observability, never silently less.
    pub fn from_env() -> Self {
        match std::env::var(TELEMETRY_ENV) {
            Err(_) => Self::disabled(),
            Ok(value) => {
                let value = value.trim();
                if value.is_empty() || value.eq_ignore_ascii_case("off") {
                    Self::disabled()
                } else if value.eq_ignore_ascii_case("metrics") {
                    Self::with_noop_sink()
                } else if let Some(path) = value.strip_prefix("jsonl:") {
                    Self::with_jsonl_sink(path).unwrap_or_else(|_| Self::with_summary_sink())
                } else if value.eq_ignore_ascii_case("jsonl") {
                    Self::with_jsonl_sink("telemetry.jsonl")
                        .unwrap_or_else(|_| Self::with_summary_sink())
                } else if let Some(path) = value.strip_prefix("chrome:") {
                    Self::with_chrome_sink(path).unwrap_or_else(|_| Self::with_summary_sink())
                } else if value.eq_ignore_ascii_case("chrome") {
                    Self::with_chrome_sink("trace.json")
                        .unwrap_or_else(|_| Self::with_summary_sink())
                } else {
                    Self::with_summary_sink()
                }
            }
        }
    }

    /// Whether this handle records anything.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The counter `name` (no-op when disabled).
    pub fn counter(&self, name: &str) -> Counter {
        match &self.inner {
            Some(inner) => inner.registry.counter(name),
            None => Counter::disabled(),
        }
    }

    /// The gauge `name` (no-op when disabled).
    pub fn gauge(&self, name: &str) -> Gauge {
        match &self.inner {
            Some(inner) => inner.registry.gauge(name),
            None => Gauge::disabled(),
        }
    }

    /// The histogram `name` (no-op when disabled).
    pub fn histogram(&self, name: &str, buckets: Buckets) -> Histogram {
        match &self.inner {
            Some(inner) => inner.registry.histogram(name, buckets),
            None => Histogram::disabled(),
        }
    }

    /// Opens a scoped wall-clock timer; the span is reported to the sink
    /// when the guard drops (or on [`Span::finish`]).
    #[inline]
    pub fn span(&self, name: &'static str) -> Span {
        Span {
            inner: self.inner.as_ref().map(|inner| SpanInner {
                handle: Arc::clone(inner),
                name,
                start: Instant::now(),
            }),
        }
    }

    /// Reports a discrete event with numeric fields to the sink.
    pub fn event(&self, name: &str, fields: &[(&str, f64)]) {
        if let Some(inner) = &self.inner {
            inner.sink.record_event(name, fields);
        }
    }

    /// Snapshots every registered metric (empty when disabled).
    pub fn metrics_snapshot(&self) -> std::collections::BTreeMap<String, MetricValue> {
        match &self.inner {
            Some(inner) => inner.registry.snapshot(),
            None => Default::default(),
        }
    }

    /// The sink's end-of-run summary, if it keeps one.
    pub fn sink_summary(&self) -> Option<String> {
        self.inner.as_ref().and_then(|inner| inner.sink.summary())
    }

    /// Flushes the sink's buffered output.
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            inner.sink.flush();
        }
    }
}

struct SpanInner {
    handle: Arc<Inner>,
    name: &'static str,
    start: Instant,
}

/// A scoped wall-clock timer; reports its duration on drop.
pub struct Span {
    inner: Option<SpanInner>,
}

impl Span {
    /// Opens a span on `handle` — sugar for [`TelemetryHandle::span`]
    /// matching the `Span::enter("mining.pc.level", ..)` idiom.
    pub fn enter(name: &'static str, handle: &TelemetryHandle) -> Span {
        handle.span(name)
    }

    /// Ends the span now, returning the elapsed time in seconds.
    pub fn finish(mut self) -> f64 {
        match self.inner.take() {
            None => 0.0,
            Some(inner) => {
                let elapsed = inner.start.elapsed();
                inner
                    .handle
                    .sink
                    .record_span_interval(inner.name, inner.start, elapsed);
                elapsed.as_secs_f64()
            }
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            inner
                .handle
                .sink
                .record_span_interval(inner.name, inner.start, inner.start.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let t = TelemetryHandle::disabled();
        assert!(!t.enabled());
        let c = t.counter("x");
        c.inc();
        assert_eq!(c.get(), 0);
        let _span = t.span("nothing");
        assert!(t.sink_summary().is_none());
        assert!(t.metrics_snapshot().is_empty());
    }

    #[test]
    fn live_handle_shares_one_registry() {
        let t = TelemetryHandle::with_noop_sink();
        let a = t.counter("shared");
        let b = t.clone().counter("shared");
        a.inc();
        b.inc();
        assert_eq!(t.counter("shared").get(), 2);
        assert!(matches!(
            t.metrics_snapshot().get("shared"),
            Some(MetricValue::Counter(2))
        ));
    }

    #[test]
    fn spans_reach_the_memory_sink() {
        let t = TelemetryHandle::with_summary_sink();
        {
            let _span = Span::enter("stage.one", &t);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let elapsed = t.span("stage.two").finish();
        assert!(elapsed >= 0.0);
        let summary = t.sink_summary().unwrap();
        assert!(summary.contains("stage.one"), "{summary}");
        assert!(summary.contains("stage.two"), "{summary}");
    }

    #[test]
    fn from_env_without_variable_is_disabled() {
        // The test harness never sets the variable for this process.
        if std::env::var(TELEMETRY_ENV).is_err() {
            assert!(!TelemetryHandle::from_env().enabled());
        }
    }
}
