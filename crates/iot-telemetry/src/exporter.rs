//! Prometheus text-format exporter and a tiny scrape server.
//!
//! [`render_prometheus`] turns a [`crate::MetricsRegistry::snapshot`] into
//! the Prometheus text exposition format (version 0.0.4): counters gain
//! the conventional `_total` suffix, gauges export their current value
//! plus a `_peak` series for the high-water mark, and histograms emit
//! cumulative `_bucket{le="…"}` series with `_sum` and `_count`.
//!
//! Dotted metric names become underscore families, and an all-digit
//! segment is lifted into a label named after the preceding segment, so
//! the per-shard instruments collapse into one labelled family:
//!
//! ```text
//! hub.shard.0.events  ─┐
//! hub.shard.1.events  ─┴─►  hub_shard_events_total{shard="0"} 42
//!                           hub_shard_events_total{shard="1"} 17
//! ```
//!
//! [`MetricsServer`] serves the rendered snapshot over HTTP from a
//! background `std::net::TcpListener` thread — enough for `curl` and any
//! Prometheus scraper, with zero dependencies. Scrapes read the live
//! atomics; nothing is paused or locked beyond the registry's
//! registration mutex.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::metrics::{HistogramSnapshot, MetricValue};
use crate::TelemetryHandle;

/// How often the accept loop polls for connections and the stop flag.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// Ceiling on any single blocking read from a scrape connection.
const READ_TIMEOUT: Duration = Duration::from_millis(500);

/// How long one connection may take to write its response. The accept
/// loop is single-threaded, so a scraper that stops reading must not be
/// able to wedge the exporter on `write_all`.
const WRITE_TIMEOUT: Duration = Duration::from_millis(500);

/// Total budget for receiving one request. Per-read timeouts alone do
/// not bound a connection: a client trickling one byte per read resets
/// the clock each time (slow-loris), so the whole receive phase shares
/// this one deadline.
const CONN_DEADLINE: Duration = Duration::from_secs(1);

/// Cap on the buffered request bytes. A scrape request is one short GET
/// line plus a few headers; anything larger is garbage and is answered
/// 400 instead of buffered without bound.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// Renders a metrics snapshot in the Prometheus text exposition format.
///
/// Families are sorted by name; every family carries one `# TYPE` line.
/// An empty snapshot (e.g. from a disabled [`TelemetryHandle`]) renders
/// as the empty string, which is a valid (empty) exposition.
pub fn render_prometheus(snapshot: &BTreeMap<String, MetricValue>) -> String {
    #[derive(Debug)]
    struct Family<'a> {
        kind: &'static str,
        rows: Vec<(String, &'a MetricValue)>,
    }
    let mut families: BTreeMap<String, Family<'_>> = BTreeMap::new();
    for (name, value) in snapshot {
        let (family, labels) = family_and_labels(name);
        let kind = match value {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(..) => "gauge",
            MetricValue::Histogram(_) => "histogram",
        };
        let family = match value {
            MetricValue::Counter(_) => format!("{family}_total"),
            _ => family,
        };
        let entry = families.entry(family).or_insert(Family {
            kind,
            rows: Vec::new(),
        });
        // A kind clash inside one family (e.g. `a.1.x` counter vs `a.2.x`
        // gauge) cannot arise from one registry today; first kind wins.
        entry.rows.push((labels, value));
    }
    let mut out = String::new();
    for (family, group) in &families {
        let _ = writeln!(out, "# TYPE {family} {}", group.kind);
        for (labels, value) in &group.rows {
            match value {
                MetricValue::Counter(total) => {
                    let _ = writeln!(out, "{family}{} {total}", braced(labels));
                }
                MetricValue::Gauge(current, _max) => {
                    let _ = writeln!(out, "{family}{} {current}", braced(labels));
                }
                MetricValue::Histogram(snapshot) => {
                    write_histogram(&mut out, family, labels, snapshot);
                }
            }
        }
        // The high-water marks ride along as a sibling gauge family.
        if group.kind == "gauge" {
            let _ = writeln!(out, "# TYPE {family}_peak gauge");
            for (labels, value) in &group.rows {
                if let MetricValue::Gauge(_, max) = value {
                    let _ = writeln!(out, "{family}_peak{} {max}", braced(labels));
                }
            }
        }
    }
    out
}

fn write_histogram(out: &mut String, family: &str, labels: &str, snapshot: &HistogramSnapshot) {
    let mut cumulative = 0u64;
    for (i, count) in snapshot.counts.iter().enumerate() {
        cumulative += count;
        let le = match snapshot.bounds.get(i) {
            Some(bound) => fmt_f64(*bound),
            None => "+Inf".to_string(),
        };
        let le = escape_label(&le);
        let sep = if labels.is_empty() { "" } else { "," };
        let _ = writeln!(
            out,
            "{family}_bucket{{{labels}{sep}le=\"{le}\"}} {cumulative}"
        );
    }
    // A disabled histogram snapshots with no buckets at all; still emit
    // the +Inf bucket so the family parses as a histogram.
    if snapshot.counts.is_empty() {
        let sep = if labels.is_empty() { "" } else { "," };
        let _ = writeln!(out, "{family}_bucket{{{labels}{sep}le=\"+Inf\"}} 0");
    }
    let braces = braced(labels);
    let _ = writeln!(out, "{family}_sum{braces} {}", fmt_f64(snapshot.sum));
    let _ = writeln!(out, "{family}_count{braces} {}", snapshot.count);
}

/// Splits a dotted metric name into a sanitized family name and a
/// rendered label list: every all-digit segment becomes the value of a
/// label named after the segment before it.
fn family_and_labels(name: &str) -> (String, String) {
    let segments: Vec<&str> = name.split('.').collect();
    let mut family = String::new();
    let mut labels = String::new();
    for (i, segment) in segments.iter().enumerate() {
        let is_index = i > 0 && !segment.is_empty() && segment.bytes().all(|b| b.is_ascii_digit());
        if is_index {
            if !labels.is_empty() {
                labels.push(',');
            }
            let _ = write!(
                labels,
                "{}=\"{}\"",
                sanitize(segments[i - 1]),
                escape_label(segment)
            );
        } else {
            if !family.is_empty() {
                family.push('_');
            }
            family.push_str(&sanitize(segment));
        }
    }
    if family.is_empty() {
        family.push('_');
    }
    (family, labels)
}

/// Maps a name segment onto the Prometheus name alphabet
/// (`[a-zA-Z0-9_]`, not starting with a digit).
fn sanitize(segment: &str) -> String {
    let mut out = String::with_capacity(segment.len());
    for (i, c) in segment.chars().enumerate() {
        let ok = c.is_ascii_alphanumeric() || c == '_';
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn braced(labels: &str) -> String {
    if labels.is_empty() {
        String::new()
    } else {
        format!("{{{labels}}}")
    }
}

/// Prometheus sample-value formatting: finite values via `Display`,
/// non-finite as `+Inf` / `-Inf` / `NaN`.
fn fmt_f64(value: f64) -> String {
    if value.is_nan() {
        "NaN".to_string()
    } else if value == f64::INFINITY {
        "+Inf".to_string()
    } else if value == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{value}")
    }
}

/// A background HTTP server exposing a [`TelemetryHandle`]'s metrics in
/// Prometheus text format.
///
/// Serves `GET /metrics` (and `/`) with a fresh [`render_prometheus`]
/// snapshot per scrape; anything else is a 404. The listener thread polls
/// a stop flag, so dropping the server (or calling
/// [`MetricsServer::stop`]) shuts it down promptly without needing a
/// wake-up connection.
///
/// Connections are handled one at a time, so each one is strictly
/// bounded: a shared receive deadline across all reads (a trickling
/// client cannot reset the clock per byte), a write timeout on the
/// response, and a cap on buffered request bytes. A client that exceeds
/// any of them gets a 400 and the loop moves on — one slow or hostile
/// scraper cannot starve the healthy ones.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// scrape thread.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn serve(addr: impl ToSocketAddrs, telemetry: TelemetryHandle) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("iot-telemetry-metrics".to_string())
            .spawn(move || accept_loop(&listener, &telemetry, &flag))?;
        Ok(MetricsServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the scrape thread and waits for it to exit.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, telemetry: &TelemetryHandle, stop: &AtomicBool) {
    loop {
        if stop.load(Ordering::Acquire) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                // One scrape must never take the server down.
                let _ = answer(stream, telemetry);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

fn answer(mut stream: TcpStream, telemetry: &TelemetryHandle) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_write_timeout(Some(WRITE_TIMEOUT))?;
    let started = Instant::now();
    let mut request = Vec::new();
    let mut buf = [0u8; 1024];
    // Read until the header terminator, a half-close, the byte cap, or
    // the connection deadline — whichever comes first. Timing out or
    // overflowing is a client fault, answered 400 so the accept loop
    // moves on to the next scraper.
    let complete = loop {
        let remaining = CONN_DEADLINE.saturating_sub(started.elapsed());
        if remaining.is_zero() {
            break false;
        }
        stream.set_read_timeout(Some(remaining.min(READ_TIMEOUT)))?;
        let n = match stream.read(&mut buf) {
            Ok(0) => break !request.is_empty(),
            Ok(n) => n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue
            }
            Err(e) => return Err(e),
        };
        request.extend_from_slice(&buf[..n]);
        if request.windows(4).any(|w| w == b"\r\n\r\n") {
            break true;
        }
        if request.len() >= MAX_REQUEST_BYTES {
            break false;
        }
    };
    let request = String::from_utf8_lossy(&request);
    let path = request
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .unwrap_or("/");
    let path = path.split('?').next().unwrap_or(path);
    let (status, body) = if !complete {
        ("400 Bad Request", "bad request\n".to_string())
    } else if path == "/metrics" || path == "/" {
        let body = render_prometheus(&telemetry.metrics_snapshot());
        ("200 OK", body)
    } else {
        ("404 Not Found", "not found\n".to_string())
    };
    let response = format!(
        "HTTP/1.1 {status}\r\n\
         Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Buckets;

    #[test]
    fn families_labels_and_suffixes() {
        let t = TelemetryHandle::with_noop_sink();
        t.counter("hub.submitted").add(7);
        t.counter("hub.shard.0.events").add(4);
        t.counter("hub.shard.1.events").add(9);
        t.gauge("hub.shard.0.queue_depth").set(3);
        let text = render_prometheus(&t.metrics_snapshot());
        assert!(
            text.contains("# TYPE hub_submitted_total counter"),
            "{text}"
        );
        assert!(text.contains("hub_submitted_total 7"), "{text}");
        assert!(
            text.contains("hub_shard_events_total{shard=\"0\"} 4"),
            "{text}"
        );
        assert!(
            text.contains("hub_shard_events_total{shard=\"1\"} 9"),
            "{text}"
        );
        assert!(
            text.contains("hub_shard_queue_depth{shard=\"0\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("hub_shard_queue_depth_peak{shard=\"0\"} 3"),
            "{text}"
        );
        // One TYPE line per family, not per row.
        let type_lines = text
            .lines()
            .filter(|l| l.contains("hub_shard_events_total counter"))
            .count();
        assert_eq!(type_lines, 1, "{text}");
    }

    #[test]
    fn histogram_buckets_are_cumulative_with_inf() {
        let t = TelemetryHandle::with_noop_sink();
        let h = t.histogram("lat", Buckets::linear(0.0, 2.0, 2));
        h.observe(0.5);
        h.observe(1.5);
        h.observe(99.0);
        let text = render_prometheus(&t.metrics_snapshot());
        assert!(text.contains("# TYPE lat histogram"), "{text}");
        assert!(text.contains("lat_bucket{le=\"1\"} 1"), "{text}");
        assert!(text.contains("lat_bucket{le=\"2\"} 2"), "{text}");
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 3"), "{text}");
        assert!(text.contains("lat_sum 101"), "{text}");
        assert!(text.contains("lat_count 3"), "{text}");
    }

    #[test]
    fn empty_snapshot_renders_empty() {
        assert_eq!(
            render_prometheus(&TelemetryHandle::disabled().metrics_snapshot()),
            ""
        );
    }

    #[test]
    fn sanitize_maps_bad_characters() {
        let (family, labels) = family_and_labels("a-b.c d.9x");
        assert_eq!(family, "a_b_c_d__9x");
        assert!(labels.is_empty());
        let (family, labels) = family_and_labels("hub.shard.12.events");
        assert_eq!(family, "hub_shard_events");
        assert_eq!(labels, "shard=\"12\"");
    }

    #[test]
    fn server_serves_and_404s() {
        let t = TelemetryHandle::with_noop_sink();
        t.counter("up").inc();
        let server = MetricsServer::serve("127.0.0.1:0", t).unwrap();
        let addr = server.local_addr();
        let fetch = |path: &str| -> String {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream
                .write_all(
                    format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
                        .as_bytes(),
                )
                .unwrap();
            let mut out = String::new();
            stream.read_to_string(&mut out).unwrap();
            out
        };
        let ok = fetch("/metrics");
        assert!(ok.starts_with("HTTP/1.1 200 OK"), "{ok}");
        assert!(ok.contains("up_total 1"), "{ok}");
        let missing = fetch("/nope");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
        server.stop();
    }

    #[test]
    fn slow_client_cannot_stall_the_exporter() {
        let t = TelemetryHandle::with_noop_sink();
        t.counter("up").inc();
        let server = MetricsServer::serve("127.0.0.1:0", t).unwrap();
        let addr = server.local_addr();
        // A slow-loris: opens the connection, sends a partial request
        // (no header terminator), and then just sits there.
        let mut slow = TcpStream::connect(addr).unwrap();
        slow.write_all(b"GET /metrics HTTP/1.1\r\n").unwrap();
        // A healthy scrape queued behind it must still be answered: the
        // stalled connection is bounded by the shared receive deadline,
        // not held open forever.
        let started = Instant::now();
        let mut healthy = TcpStream::connect(addr).unwrap();
        healthy
            .write_all(b"GET /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        healthy.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        assert!(response.contains("up_total 1"), "{response}");
        assert!(
            started.elapsed() < CONN_DEADLINE + Duration::from_secs(10),
            "healthy scrape waited {:?} behind a stalled client",
            started.elapsed()
        );
        // The stalled connection itself was answered 400 (or closed),
        // never served a snapshot for half a request.
        slow.set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut out = String::new();
        let _ = slow.read_to_string(&mut out);
        assert!(
            out.is_empty() || out.starts_with("HTTP/1.1 400"),
            "stalled client got: {out}"
        );
        server.stop();
    }
}
