//! Pluggable span/event sinks.
//!
//! A [`Sink`] receives completed spans and discrete events. Three
//! implementations ship with the crate:
//!
//! * [`NoopSink`] — discards everything (the default),
//! * [`MemorySink`] — aggregates per-name span statistics in memory for an
//!   end-of-run summary,
//! * [`JsonlSink`] — appends one JSON object per record to a file.
//!
//! `CAUSALIOT_TELEMETRY` selects among them — see
//! [`crate::TelemetryHandle::from_env`].

use std::collections::BTreeMap;
use std::fmt::Debug;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write as _};
use std::path::Path;
use std::sync::Mutex;
use std::time::Duration;

use crate::json::JsonValue;

/// Receives completed spans and discrete events.
pub trait Sink: Send + Sync + Debug {
    /// A scoped timer finished.
    fn record_span(&self, name: &str, duration: Duration);

    /// A discrete occurrence with numeric fields.
    fn record_event(&self, name: &str, fields: &[(&str, f64)]);

    /// Flushes buffered output (if any).
    fn flush(&self) {}

    /// A human-readable end-of-run summary, when the sink keeps one.
    fn summary(&self) -> Option<String> {
        None
    }
}

/// Discards everything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl Sink for NoopSink {
    fn record_span(&self, _name: &str, _duration: Duration) {}
    fn record_event(&self, _name: &str, _fields: &[(&str, f64)]) {}
}

#[derive(Debug, Default, Clone, Copy)]
struct SpanStats {
    count: u64,
    total: Duration,
    max: Duration,
}

/// Aggregates per-name span statistics in memory.
#[derive(Debug, Default)]
pub struct MemorySink {
    spans: Mutex<BTreeMap<String, SpanStats>>,
    events: Mutex<BTreeMap<String, u64>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Sink for MemorySink {
    fn record_span(&self, name: &str, duration: Duration) {
        let mut spans = self.spans.lock().expect("sink poisoned");
        let stats = spans.entry(name.to_string()).or_default();
        stats.count += 1;
        stats.total += duration;
        stats.max = stats.max.max(duration);
    }

    fn record_event(&self, name: &str, _fields: &[(&str, f64)]) {
        let mut events = self.events.lock().expect("sink poisoned");
        *events.entry(name.to_string()).or_default() += 1;
    }

    fn summary(&self) -> Option<String> {
        let spans = self.spans.lock().expect("sink poisoned");
        let events = self.events.lock().expect("sink poisoned");
        let mut out = String::new();
        if !spans.is_empty() {
            out.push_str("spans (name: count, total, mean, max):\n");
            for (name, s) in spans.iter() {
                let mean = s.total / u32::try_from(s.count).unwrap_or(u32::MAX).max(1);
                out.push_str(&format!(
                    "  {name:<28} {:>7}  {:>10.3?}  {:>10.3?}  {:>10.3?}\n",
                    s.count, s.total, mean, s.max
                ));
            }
        }
        if !events.is_empty() {
            out.push_str("events:\n");
            for (name, count) in events.iter() {
                out.push_str(&format!("  {name:<28} {count:>7}\n"));
            }
        }
        Some(out)
    }
}

/// Appends one JSON object per record to a file.
#[derive(Debug)]
pub struct JsonlSink {
    writer: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Opens (appending) the given file.
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        if let Some(parent) = path.as_ref().parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(JsonlSink {
            writer: Mutex::new(BufWriter::new(file)),
        })
    }

    fn write_line(&self, value: &JsonValue) {
        let mut writer = self.writer.lock().expect("sink poisoned");
        // Telemetry must never take the pipeline down: IO errors are
        // swallowed after best effort.
        let _ = writeln!(writer, "{}", value.render());
    }
}

impl Sink for JsonlSink {
    fn record_span(&self, name: &str, duration: Duration) {
        let mut obj = JsonValue::object();
        obj.push("type", "span")
            .push("name", name)
            .push("us", duration.as_secs_f64() * 1e6);
        self.write_line(&obj);
    }

    fn record_event(&self, name: &str, fields: &[(&str, f64)]) {
        let mut obj = JsonValue::object();
        obj.push("type", "event").push("name", name);
        for (key, value) in fields {
            obj.push(key, *value);
        }
        self.write_line(&obj);
    }

    fn flush(&self) {
        let mut writer = self.writer.lock().expect("sink poisoned");
        let _ = writer.flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_sink_aggregates() {
        let sink = MemorySink::new();
        sink.record_span("fit", Duration::from_millis(2));
        sink.record_span("fit", Duration::from_millis(4));
        sink.record_event("drop", &[]);
        let summary = sink.summary().unwrap();
        assert!(summary.contains("fit"), "{summary}");
        assert!(summary.contains("drop"), "{summary}");
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let path = std::env::temp_dir().join("iot-telemetry-test-sink.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let sink = JsonlSink::create(&path).unwrap();
            sink.record_span("mining.total", Duration::from_micros(1500));
            sink.record_event("monitor.drop", &[("reason", 1.0)]);
        }
        let contents = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = contents.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"type\":\"span\""), "{}", lines[0]);
        assert!(lines[1].contains("\"reason\":1"), "{}", lines[1]);
        let _ = std::fs::remove_file(&path);
    }
}
