//! Pluggable span/event sinks.
//!
//! A [`Sink`] receives completed spans and discrete events. Four
//! implementations ship with the crate:
//!
//! * [`NoopSink`] — discards everything (the default),
//! * [`MemorySink`] — aggregates per-name span statistics in memory for an
//!   end-of-run summary,
//! * [`JsonlSink`] — appends one JSON object per record to a file,
//! * [`ChromeTraceSink`] — writes Chrome `trace_event` JSON for
//!   `chrome://tracing` / Perfetto, with one lane per thread.
//!
//! `CAUSALIOT_TELEMETRY` selects among them — see
//! [`crate::TelemetryHandle::from_env`].

use std::collections::BTreeMap;
use std::fmt::Debug;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write as _};
use std::path::Path;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::json::JsonValue;

/// Receives completed spans and discrete events.
pub trait Sink: Send + Sync + Debug {
    /// A scoped timer finished.
    fn record_span(&self, name: &str, duration: Duration);

    /// A scoped timer finished, with its start instant attached.
    ///
    /// [`crate::Span`] reports through this method so sinks that lay
    /// spans out on a timeline (the [`ChromeTraceSink`]) can place them;
    /// the default implementation discards the start and forwards to
    /// [`Sink::record_span`], so duration-only sinks need not care.
    fn record_span_interval(&self, name: &str, start: Instant, duration: Duration) {
        let _ = start;
        self.record_span(name, duration);
    }

    /// A discrete occurrence with numeric fields.
    fn record_event(&self, name: &str, fields: &[(&str, f64)]);

    /// Flushes buffered output (if any).
    fn flush(&self) {}

    /// A human-readable end-of-run summary, when the sink keeps one.
    fn summary(&self) -> Option<String> {
        None
    }
}

/// Discards everything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl Sink for NoopSink {
    fn record_span(&self, _name: &str, _duration: Duration) {}
    fn record_event(&self, _name: &str, _fields: &[(&str, f64)]) {}
}

#[derive(Debug, Default, Clone, Copy)]
struct SpanStats {
    count: u64,
    total: Duration,
    max: Duration,
}

/// Aggregates per-name span statistics in memory.
#[derive(Debug, Default)]
pub struct MemorySink {
    spans: Mutex<BTreeMap<String, SpanStats>>,
    events: Mutex<BTreeMap<String, u64>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Sink for MemorySink {
    fn record_span(&self, name: &str, duration: Duration) {
        let mut spans = self.spans.lock().expect("sink poisoned");
        let stats = spans.entry(name.to_string()).or_default();
        stats.count += 1;
        stats.total += duration;
        stats.max = stats.max.max(duration);
    }

    fn record_event(&self, name: &str, _fields: &[(&str, f64)]) {
        let mut events = self.events.lock().expect("sink poisoned");
        *events.entry(name.to_string()).or_default() += 1;
    }

    fn summary(&self) -> Option<String> {
        let spans = self.spans.lock().expect("sink poisoned");
        let events = self.events.lock().expect("sink poisoned");
        let mut out = String::new();
        if !spans.is_empty() {
            out.push_str("spans (name: count, total, mean, max):\n");
            for (name, s) in spans.iter() {
                let mean = s.total / u32::try_from(s.count).unwrap_or(u32::MAX).max(1);
                out.push_str(&format!(
                    "  {name:<28} {:>7}  {:>10.3?}  {:>10.3?}  {:>10.3?}\n",
                    s.count, s.total, mean, s.max
                ));
            }
        }
        if !events.is_empty() {
            out.push_str("events:\n");
            for (name, count) in events.iter() {
                out.push_str(&format!("  {name:<28} {count:>7}\n"));
            }
        }
        Some(out)
    }
}

/// Appends one JSON object per record to a file.
#[derive(Debug)]
pub struct JsonlSink {
    writer: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Opens (appending) the given file.
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        if let Some(parent) = path.as_ref().parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(JsonlSink {
            writer: Mutex::new(BufWriter::new(file)),
        })
    }

    fn write_line(&self, value: &JsonValue) {
        let mut writer = self.writer.lock().expect("sink poisoned");
        // Telemetry must never take the pipeline down: IO errors are
        // swallowed after best effort.
        let _ = writeln!(writer, "{}", value.render());
    }
}

impl Sink for JsonlSink {
    fn record_span(&self, name: &str, duration: Duration) {
        let mut obj = JsonValue::object();
        obj.push("type", "span")
            .push("name", name)
            .push("us", duration.as_secs_f64() * 1e6);
        self.write_line(&obj);
    }

    fn record_event(&self, name: &str, fields: &[(&str, f64)]) {
        let mut obj = JsonValue::object();
        obj.push("type", "event").push("name", name);
        for (key, value) in fields {
            obj.push(key, *value);
        }
        self.write_line(&obj);
    }

    fn flush(&self) {
        let mut writer = self.writer.lock().expect("sink poisoned");
        let _ = writer.flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Writes Chrome `trace_event` JSON — open the file in `chrome://tracing`
/// or [Perfetto](https://ui.perfetto.dev) to see fit stages and hub
/// workers as horizontal lanes on a shared timeline.
///
/// Every span becomes a complete event (`"ph":"X"`) with microsecond
/// timestamps relative to the sink's creation; every discrete event
/// becomes an instant (`"ph":"i"`). Each reporting thread gets its own
/// lane (`tid`), named after the thread (so the hub's
/// `iot-serve-worker-<shard>` threads appear as per-shard lanes).
/// Selected with `CAUSALIOT_TELEMETRY=chrome:<path>`.
#[derive(Debug)]
pub struct ChromeTraceSink {
    epoch: Instant,
    state: Mutex<ChromeState>,
}

#[derive(Debug)]
struct ChromeState {
    writer: BufWriter<File>,
    wrote_any: bool,
    /// Thread-id debug string → dense trace lane.
    lanes: BTreeMap<String, u64>,
}

impl ChromeTraceSink {
    /// Creates (truncating) the trace file — a trace is a one-shot
    /// artifact, unlike the appending [`JsonlSink`].
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        if let Some(parent) = path.as_ref().parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut writer = BufWriter::new(File::create(path)?);
        writer.write_all(b"[")?;
        Ok(ChromeTraceSink {
            epoch: Instant::now(),
            state: Mutex::new(ChromeState {
                writer,
                wrote_any: false,
                lanes: BTreeMap::new(),
            }),
        })
    }

    /// The calling thread's lane, assigning one (and emitting its
    /// `thread_name` metadata record) on first use.
    fn lane(&self, state: &mut ChromeState) -> u64 {
        let thread = std::thread::current();
        let key = format!("{:?}", thread.id());
        if let Some(lane) = state.lanes.get(&key) {
            return *lane;
        }
        let lane = state.lanes.len() as u64;
        state.lanes.insert(key, lane);
        let label = thread
            .name()
            .map_or_else(|| format!("thread-{lane}"), |name| name.to_string());
        let mut args = JsonValue::object();
        args.push("name", label);
        let mut meta = JsonValue::object();
        meta.push("name", "thread_name")
            .push("ph", "M")
            .push("pid", 1u64)
            .push("tid", lane)
            .push("args", args);
        Self::write_record(state, &meta);
        lane
    }

    fn write_record(state: &mut ChromeState, value: &JsonValue) {
        let separator: &[u8] = if state.wrote_any { b",\n" } else { b"\n" };
        // Telemetry must never take the pipeline down: IO errors are
        // swallowed after best effort.
        let _ = state.writer.write_all(separator);
        let _ = state.writer.write_all(value.render().as_bytes());
        state.wrote_any = true;
    }

    fn micros_since_epoch(&self, instant: Instant) -> f64 {
        instant.saturating_duration_since(self.epoch).as_secs_f64() * 1e6
    }
}

impl Sink for ChromeTraceSink {
    fn record_span(&self, name: &str, duration: Duration) {
        // No start attached: anchor the span so it *ends* now.
        let start = Instant::now().checked_sub(duration).unwrap_or(self.epoch);
        self.record_span_interval(name, start, duration);
    }

    fn record_span_interval(&self, name: &str, start: Instant, duration: Duration) {
        let mut state = self.state.lock().expect("sink poisoned");
        let lane = self.lane(&mut state);
        let mut obj = JsonValue::object();
        obj.push("name", name)
            .push("cat", "span")
            .push("ph", "X")
            .push("ts", self.micros_since_epoch(start))
            .push("dur", duration.as_secs_f64() * 1e6)
            .push("pid", 1u64)
            .push("tid", lane);
        Self::write_record(&mut state, &obj);
    }

    fn record_event(&self, name: &str, fields: &[(&str, f64)]) {
        let mut state = self.state.lock().expect("sink poisoned");
        let lane = self.lane(&mut state);
        let mut args = JsonValue::object();
        for (key, value) in fields {
            args.push(key, *value);
        }
        let mut obj = JsonValue::object();
        obj.push("name", name)
            .push("cat", "event")
            .push("ph", "i")
            .push("s", "t")
            .push("ts", self.micros_since_epoch(Instant::now()))
            .push("pid", 1u64)
            .push("tid", lane)
            .push("args", args);
        Self::write_record(&mut state, &obj);
    }

    fn flush(&self) {
        let mut state = self.state.lock().expect("sink poisoned");
        let _ = state.writer.flush();
    }
}

impl Drop for ChromeTraceSink {
    fn drop(&mut self) {
        if let Ok(state) = self.state.get_mut() {
            // Close the JSON array (tracing UIs tolerate a missing `]`,
            // but a clean file also satisfies strict JSON parsers).
            let _ = state.writer.write_all(b"\n]\n");
            let _ = state.writer.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_sink_aggregates() {
        let sink = MemorySink::new();
        sink.record_span("fit", Duration::from_millis(2));
        sink.record_span("fit", Duration::from_millis(4));
        sink.record_event("drop", &[]);
        let summary = sink.summary().unwrap();
        assert!(summary.contains("fit"), "{summary}");
        assert!(summary.contains("drop"), "{summary}");
    }

    #[test]
    fn chrome_sink_writes_a_closed_trace_array() {
        let path = std::env::temp_dir().join("iot-telemetry-test-trace.json");
        let _ = std::fs::remove_file(&path);
        {
            let sink = ChromeTraceSink::create(&path).unwrap();
            sink.record_span("fit.total", Duration::from_micros(500));
            sink.record_span_interval("hub.batch", Instant::now(), Duration::from_micros(20));
            sink.record_event("monitor.alarm", &[("len", 3.0)]);
        }
        let contents = std::fs::read_to_string(&path).unwrap();
        assert!(contents.trim_start().starts_with('['), "{contents}");
        assert!(contents.trim_end().ends_with(']'), "{contents}");
        assert!(contents.contains("\"ph\":\"X\""), "{contents}");
        assert!(contents.contains("\"ph\":\"i\""), "{contents}");
        assert!(contents.contains("thread_name"), "{contents}");
        assert!(contents.contains("\"name\":\"fit.total\""), "{contents}");
        // Two spans + one instant + one thread_name metadata record.
        assert_eq!(contents.matches("\"ph\":").count(), 4, "{contents}");
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let path = std::env::temp_dir().join("iot-telemetry-test-sink.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let sink = JsonlSink::create(&path).unwrap();
            sink.record_span("mining.total", Duration::from_micros(1500));
            sink.record_event("monitor.drop", &[("reason", 1.0)]);
        }
        let contents = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = contents.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"type\":\"span\""), "{}", lines[0]);
        assert!(lines[1].contains("\"reason\":1"), "{}", lines[1]);
        let _ = std::fs::remove_file(&path);
    }
}
