//! Lock-free metric primitives and the [`MetricsRegistry`].
//!
//! Hot-path operations ([`Counter::inc`], [`Gauge::set`],
//! [`Histogram::observe`]) touch only pre-resolved atomics; the registry's
//! mutex is taken solely at registration time (model fit / monitor spawn),
//! never per event. Every handle is `Clone` + `Send` + `Sync`, so monitor
//! threads can share one registry.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
///
/// A disabled counter (from [`Counter::disabled`]) makes every operation a
/// single branch on a `None` — the no-telemetry hot path costs nothing
/// beyond that.
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// A counter that ignores all updates.
    pub fn disabled() -> Self {
        Counter(None)
    }

    fn live() -> Self {
        Counter(Some(Arc::new(AtomicU64::new(0))))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a disabled counter).
    pub fn get(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// A last-value-wins gauge that additionally tracks its high-water mark.
///
/// # Concurrency semantics
///
/// Under concurrent setters, [`Gauge::get`] returns *some* value that was
/// set (which one wins is a race by design — gauges are
/// last-writer-wins), while [`Gauge::max`] is **monotonic**: it only ever
/// increases (via `fetch_max`), it converges to the maximum of every
/// value ever set, and no reader can observe it go backwards. The
/// high-water mark is published *before* the current value (release/
/// acquire paired), so a reader that loads `get()` and then `max()` never
/// sees `get() > max()` — the mark always covers the value it reads.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Option<Arc<GaugeCell>>);

#[derive(Debug, Default)]
struct GaugeCell {
    value: AtomicU64,
    max: AtomicU64,
}

impl Gauge {
    /// A gauge that ignores all updates.
    pub fn disabled() -> Self {
        Gauge(None)
    }

    fn live() -> Self {
        Gauge(Some(Arc::new(GaugeCell::default())))
    }

    /// Sets the current value (and raises the high-water mark first, so
    /// `max() >= get()` holds for readers that load in that order).
    #[inline]
    pub fn set(&self, value: u64) {
        if let Some(cell) = &self.0 {
            // Max first: once the new value is visible, the mark covering
            // it already is (Release write, paired with the Acquire load
            // in `get`/`max`). Storing the value first would open a
            // window where a reader sees value > max.
            cell.max.fetch_max(value, Ordering::Release);
            cell.value.store(value, Ordering::Release);
        }
    }

    /// Current value (0 for a disabled gauge).
    pub fn get(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |cell| cell.value.load(Ordering::Acquire))
    }

    /// Highest value ever set (0 for a disabled gauge). Monotonic: never
    /// observed to decrease, even under concurrent setters.
    pub fn max(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |cell| cell.max.load(Ordering::Acquire))
    }
}

/// Bucket layout for a [`Histogram`].
#[derive(Debug, Clone, PartialEq)]
pub struct Buckets {
    /// Upper bounds of each bucket, strictly increasing; an implicit
    /// overflow bucket catches everything above the last bound.
    pub bounds: Vec<f64>,
}

impl Buckets {
    /// `count` equal-width buckets spanning `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0` or `hi <= lo`.
    pub fn linear(lo: f64, hi: f64, count: usize) -> Self {
        assert!(count > 0, "need at least one bucket");
        assert!(hi > lo, "hi must exceed lo");
        let width = (hi - lo) / count as f64;
        Buckets {
            bounds: (1..=count).map(|i| lo + width * i as f64).collect(),
        }
    }

    /// `count` buckets with bounds `start, start*factor, ...`.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0`, `start <= 0`, or `factor <= 1`.
    pub fn exponential(start: f64, factor: f64, count: usize) -> Self {
        assert!(count > 0, "need at least one bucket");
        assert!(start > 0.0 && factor > 1.0, "invalid exponential layout");
        let mut bounds = Vec::with_capacity(count);
        let mut edge = start;
        for _ in 0..count {
            bounds.push(edge);
            edge *= factor;
        }
        Buckets { bounds }
    }
}

/// A fixed-bucket histogram with atomic per-bucket counts.
///
/// Quantiles are estimated by linear interpolation inside the bucket that
/// straddles the requested rank, so the estimate is exact to within one
/// bucket width (see the cross-check against `iot-stats::percentile` in
/// the integration tests).
#[derive(Debug, Clone, Default)]
pub struct Histogram(Option<Arc<HistogramCore>>);

#[derive(Debug)]
struct HistogramCore {
    bounds: Vec<f64>,
    counts: Vec<AtomicU64>, // one per bound + overflow
    total: AtomicU64,
    /// Sum in f64 bits, updated by compare-exchange (cold enough).
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

/// A point-in-time copy of a histogram's state.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds (the overflow bucket is implicit).
    pub bounds: Vec<f64>,
    /// Per-bucket counts, one per bound plus the overflow bucket.
    pub counts: Vec<u64>,
    /// Total number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: f64,
    /// Smallest observed value (`NAN` when empty).
    pub min: f64,
    /// Largest observed value (`NAN` when empty).
    pub max: f64,
}

impl HistogramSnapshot {
    /// Mean of the observed values (`NAN` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`) by intra-bucket linear
    /// interpolation, clamped to the observed `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "q={q} out of [0, 1]");
        if self.count == 0 {
            return f64::NAN;
        }
        let rank = q * (self.count as f64 - 1.0);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let bucket_end_rank = (seen + c - 1) as f64;
            if rank <= bucket_end_rank {
                let lower = if i == 0 {
                    self.min
                } else {
                    self.bounds[i - 1].max(self.min)
                };
                let upper = if i < self.bounds.len() {
                    self.bounds[i].min(self.max)
                } else {
                    self.max
                };
                if c == 1 {
                    return lower.clamp(self.min, self.max);
                }
                let within = (rank - seen as f64) / (c - 1) as f64;
                return (lower + within * (upper - lower)).clamp(self.min, self.max);
            }
            seen += c;
        }
        self.max
    }
}

impl Histogram {
    /// A histogram that ignores all updates.
    pub fn disabled() -> Self {
        Histogram(None)
    }

    /// A standalone live histogram (outside any registry).
    pub fn with_buckets(buckets: Buckets) -> Self {
        let n = buckets.bounds.len();
        Histogram(Some(Arc::new(HistogramCore {
            bounds: buckets.bounds,
            counts: (0..=n).map(|_| AtomicU64::new(0)).collect(),
            total: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        })))
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&self, value: f64) {
        let Some(core) = &self.0 else { return };
        let idx = core.bounds.partition_point(|&bound| bound < value);
        core.counts[idx].fetch_add(1, Ordering::Relaxed);
        core.total.fetch_add(1, Ordering::Relaxed);
        // Lossy-free f64 accumulation via CAS; contention here is bounded
        // by the event rate, and Relaxed is fine — the snapshot reader
        // only needs eventual consistency.
        let mut current = core.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + value).to_bits();
            match core.sum_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => current = actual,
            }
        }
        atomic_f64_min(&core.min_bits, value);
        atomic_f64_max(&core.max_bits, value);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |core| core.total.load(Ordering::Relaxed))
    }

    /// Copies out the current state (empty snapshot when disabled).
    pub fn snapshot(&self) -> HistogramSnapshot {
        match &self.0 {
            None => HistogramSnapshot {
                bounds: Vec::new(),
                counts: Vec::new(),
                count: 0,
                sum: 0.0,
                min: f64::NAN,
                max: f64::NAN,
            },
            Some(core) => {
                let count = core.total.load(Ordering::Relaxed);
                let (min, max) = if count == 0 {
                    (f64::NAN, f64::NAN)
                } else {
                    (
                        f64::from_bits(core.min_bits.load(Ordering::Relaxed)),
                        f64::from_bits(core.max_bits.load(Ordering::Relaxed)),
                    )
                };
                HistogramSnapshot {
                    bounds: core.bounds.clone(),
                    counts: core
                        .counts
                        .iter()
                        .map(|c| c.load(Ordering::Relaxed))
                        .collect(),
                    count,
                    sum: f64::from_bits(core.sum_bits.load(Ordering::Relaxed)),
                    min,
                    max,
                }
            }
        }
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`); `NAN` when empty or
    /// disabled.
    pub fn quantile(&self, q: f64) -> f64 {
        self.snapshot().quantile(q)
    }
}

fn atomic_f64_min(cell: &AtomicU64, value: f64) {
    let mut current = cell.load(Ordering::Relaxed);
    while value < f64::from_bits(current) {
        match cell.compare_exchange_weak(
            current,
            value.to_bits(),
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => break,
            Err(actual) => current = actual,
        }
    }
}

fn atomic_f64_max(cell: &AtomicU64, value: f64) {
    let mut current = cell.load(Ordering::Relaxed);
    while value > f64::from_bits(current) {
        match cell.compare_exchange_weak(
            current,
            value.to_bits(),
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => break,
            Err(actual) => current = actual,
        }
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A point-in-time value of one registered metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter total.
    Counter(u64),
    /// Gauge `(current, max)`.
    Gauge(u64, u64),
    /// Full histogram state.
    Histogram(HistogramSnapshot),
}

/// A named collection of metrics shared across the pipeline.
///
/// Lookup/registration takes a mutex; returned handles are lock-free.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns (registering on first use) the counter `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        let mut metrics = self.metrics.lock().expect("metrics poisoned");
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::live()))
        {
            Metric::Counter(c) => c.clone(),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Returns (registering on first use) the gauge `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut metrics = self.metrics.lock().expect("metrics poisoned");
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::live()))
        {
            Metric::Gauge(g) => g.clone(),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Returns (registering on first use) the histogram `name` with the
    /// given layout. The layout of an already-registered histogram wins.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str, buckets: Buckets) -> Histogram {
        let mut metrics = self.metrics.lock().expect("metrics poisoned");
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::with_buckets(buckets)))
        {
            Metric::Histogram(h) => h.clone(),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Snapshots every registered metric, sorted by name.
    pub fn snapshot(&self) -> BTreeMap<String, MetricValue> {
        let metrics = self.metrics.lock().expect("metrics poisoned");
        metrics
            .iter()
            .map(|(name, metric)| {
                let value = match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get(), g.max()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                };
                (name.clone(), value)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("events");
        c.inc();
        c.add(4);
        assert_eq!(reg.counter("events").get(), 5);

        let g = reg.gauge("chain");
        g.set(3);
        g.set(1);
        assert_eq!(g.get(), 1);
        assert_eq!(g.max(), 3);
    }

    #[test]
    fn disabled_metrics_swallow_updates() {
        let c = Counter::disabled();
        c.inc();
        assert_eq!(c.get(), 0);
        let h = Histogram::disabled();
        h.observe(1.0);
        assert_eq!(h.count(), 0);
        assert!(h.quantile(0.5).is_nan());
    }

    #[test]
    fn histogram_buckets_and_bounds() {
        let h = Histogram::with_buckets(Buckets::linear(0.0, 1.0, 10));
        for i in 0..100 {
            h.observe(i as f64 / 100.0);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 100);
        assert_eq!(snap.counts.iter().sum::<u64>(), 100);
        assert!((snap.mean() - 0.495).abs() < 1e-9);
        assert_eq!(snap.min, 0.0);
        assert_eq!(snap.max, 0.99);
    }

    #[test]
    fn histogram_quantiles_are_monotone_and_bounded() {
        let h = Histogram::with_buckets(Buckets::exponential(1.0, 2.0, 16));
        for i in 1..=1000 {
            h.observe(i as f64);
        }
        let mut last = f64::NEG_INFINITY;
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            let v = h.quantile(q);
            assert!(v >= last, "quantile({q}) = {v} < {last}");
            assert!((1.0..=1000.0).contains(&v));
            last = v;
        }
        assert_eq!(h.quantile(1.0), 1000.0);
        assert_eq!(h.quantile(0.0), 1.0);
    }

    #[test]
    fn overflow_bucket_catches_everything() {
        let h = Histogram::with_buckets(Buckets::linear(0.0, 1.0, 2));
        h.observe(50.0);
        let snap = h.snapshot();
        assert_eq!(*snap.counts.last().unwrap(), 1);
        assert_eq!(snap.max, 50.0);
        assert_eq!(h.quantile(1.0), 50.0);
    }

    #[test]
    fn shared_across_threads() {
        let reg = Arc::new(MetricsRegistry::new());
        let c = reg.counter("parallel");
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let c = c.clone();
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 40_000);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("x");
        reg.gauge("x");
    }

    /// Pins the gauge's concurrent semantics: under racing setters the
    /// high-water mark is monotonic for any observer, a paired
    /// `get()`-then-`max()` read never sees `value > max`, and the final
    /// mark is exactly the global maximum of every value ever set.
    #[test]
    fn gauge_max_is_monotonic_under_concurrent_setters() {
        const SETTERS: usize = 4;
        const ROUNDS: usize = 5_000;
        let g = Gauge::live();
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|scope| {
            for t in 0..SETTERS {
                let g = g.clone();
                scope.spawn(move || {
                    // Interleave rising and falling values so last-writer
                    // races genuinely move the current value both ways.
                    for i in 0..ROUNDS {
                        let v = if i % 2 == 0 {
                            (t * ROUNDS + i) as u64
                        } else {
                            (i % 7) as u64
                        };
                        g.set(v);
                    }
                });
            }
            for _ in 0..2 {
                let g = g.clone();
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    let mut last_max = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        // Load order matters: value first, then max. The
                        // setter publishes max before value, so this pair
                        // must satisfy value <= max.
                        let value = g.get();
                        let max = g.max();
                        assert!(max >= last_max, "max went backwards: {max} < {last_max}");
                        assert!(value <= max, "observed value {value} above max {max}");
                        last_max = max;
                    }
                });
            }
            // Writers finish when their spawns join; scoped threads joined
            // at scope end, so flag the samplers once setters are done.
            scope.spawn({
                let stop = Arc::clone(&stop);
                move || {
                    // Give setters a head start, then let scope teardown
                    // join everything; samplers poll the flag.
                    std::thread::sleep(std::time::Duration::from_millis(50));
                    stop.store(true, Ordering::Relaxed);
                }
            });
        });
        let expected_max = (0..SETTERS)
            .map(|t| (t * ROUNDS + (ROUNDS - 2)) as u64)
            .max()
            .unwrap();
        assert_eq!(g.max(), expected_max);
    }

    #[test]
    fn quantile_of_empty_histogram_is_nan() {
        let h = Histogram::with_buckets(Buckets::linear(0.0, 1.0, 4));
        assert!(h.quantile(0.0).is_nan());
        assert!(h.quantile(0.5).is_nan());
        assert!(h.quantile(1.0).is_nan());
    }

    #[test]
    fn quantile_extremes_hit_min_and_max() {
        let h = Histogram::with_buckets(Buckets::linear(0.0, 10.0, 4));
        for v in [3.0, 17.0, 29.5] {
            h.observe(v);
        }
        assert_eq!(h.quantile(0.0), 3.0);
        assert_eq!(h.quantile(1.0), 29.5);
    }

    #[test]
    fn quantile_of_single_observation_is_that_observation() {
        let h = Histogram::with_buckets(Buckets::exponential(1.0, 2.0, 8));
        h.observe(42.0);
        for q in [0.0, 0.25, 0.5, 0.999, 1.0] {
            assert_eq!(h.quantile(q), 42.0, "q={q}");
        }
    }

    #[test]
    fn quantile_with_all_mass_in_one_bucket_interpolates_within_it() {
        // Every observation lands in the sole finite bucket (le = 1.0).
        let h = Histogram::with_buckets(Buckets::linear(0.0, 1.0, 1));
        for v in [0.2, 0.4, 0.6, 0.8] {
            h.observe(v);
        }
        assert_eq!(h.quantile(0.0), 0.2);
        assert_eq!(h.quantile(1.0), 0.8);
        let median = h.quantile(0.5);
        assert!(
            (0.2..=0.8).contains(&median),
            "median {median} escaped the observed range"
        );
    }

    #[test]
    fn quantile_into_overflow_bucket_is_clamped_to_observed_max() {
        let h = Histogram::with_buckets(Buckets::linear(0.0, 1.0, 2));
        h.observe(0.5);
        h.observe(100.0);
        h.observe(200.0);
        assert_eq!(h.quantile(1.0), 200.0);
        assert!(h.quantile(0.99) <= 200.0);
    }

    #[test]
    #[should_panic(expected = "out of [0, 1]")]
    fn quantile_rejects_q_above_one() {
        let h = Histogram::with_buckets(Buckets::linear(0.0, 1.0, 2));
        h.observe(0.5);
        let _ = h.quantile(1.5);
    }

    #[test]
    #[should_panic(expected = "out of [0, 1]")]
    fn quantile_rejects_negative_q() {
        let h = Histogram::with_buckets(Buckets::linear(0.0, 1.0, 2));
        h.observe(0.5);
        let _ = h.quantile(-0.1);
    }

    #[test]
    #[should_panic(expected = "out of [0, 1]")]
    fn quantile_rejects_nan_q() {
        let h = Histogram::with_buckets(Buckets::linear(0.0, 1.0, 2));
        h.observe(0.5);
        let _ = h.quantile(f64::NAN);
    }
}
