//! Lock-free metric primitives and the [`MetricsRegistry`].
//!
//! Hot-path operations ([`Counter::inc`], [`Gauge::set`],
//! [`Histogram::observe`]) touch only pre-resolved atomics; the registry's
//! mutex is taken solely at registration time (model fit / monitor spawn),
//! never per event. Every handle is `Clone` + `Send` + `Sync`, so monitor
//! threads can share one registry.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
///
/// A disabled counter (from [`Counter::disabled`]) makes every operation a
/// single branch on a `None` — the no-telemetry hot path costs nothing
/// beyond that.
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// A counter that ignores all updates.
    pub fn disabled() -> Self {
        Counter(None)
    }

    fn live() -> Self {
        Counter(Some(Arc::new(AtomicU64::new(0))))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a disabled counter).
    pub fn get(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// A last-value-wins gauge that additionally tracks its high-water mark.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Option<Arc<GaugeCell>>);

#[derive(Debug, Default)]
struct GaugeCell {
    value: AtomicU64,
    max: AtomicU64,
}

impl Gauge {
    /// A gauge that ignores all updates.
    pub fn disabled() -> Self {
        Gauge(None)
    }

    fn live() -> Self {
        Gauge(Some(Arc::new(GaugeCell::default())))
    }

    /// Sets the current value.
    #[inline]
    pub fn set(&self, value: u64) {
        if let Some(cell) = &self.0 {
            cell.value.store(value, Ordering::Relaxed);
            cell.max.fetch_max(value, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a disabled gauge).
    pub fn get(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |cell| cell.value.load(Ordering::Relaxed))
    }

    /// Highest value ever set (0 for a disabled gauge).
    pub fn max(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |cell| cell.max.load(Ordering::Relaxed))
    }
}

/// Bucket layout for a [`Histogram`].
#[derive(Debug, Clone, PartialEq)]
pub struct Buckets {
    /// Upper bounds of each bucket, strictly increasing; an implicit
    /// overflow bucket catches everything above the last bound.
    pub bounds: Vec<f64>,
}

impl Buckets {
    /// `count` equal-width buckets spanning `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0` or `hi <= lo`.
    pub fn linear(lo: f64, hi: f64, count: usize) -> Self {
        assert!(count > 0, "need at least one bucket");
        assert!(hi > lo, "hi must exceed lo");
        let width = (hi - lo) / count as f64;
        Buckets {
            bounds: (1..=count).map(|i| lo + width * i as f64).collect(),
        }
    }

    /// `count` buckets with bounds `start, start*factor, ...`.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0`, `start <= 0`, or `factor <= 1`.
    pub fn exponential(start: f64, factor: f64, count: usize) -> Self {
        assert!(count > 0, "need at least one bucket");
        assert!(start > 0.0 && factor > 1.0, "invalid exponential layout");
        let mut bounds = Vec::with_capacity(count);
        let mut edge = start;
        for _ in 0..count {
            bounds.push(edge);
            edge *= factor;
        }
        Buckets { bounds }
    }
}

/// A fixed-bucket histogram with atomic per-bucket counts.
///
/// Quantiles are estimated by linear interpolation inside the bucket that
/// straddles the requested rank, so the estimate is exact to within one
/// bucket width (see the cross-check against `iot-stats::percentile` in
/// the integration tests).
#[derive(Debug, Clone, Default)]
pub struct Histogram(Option<Arc<HistogramCore>>);

#[derive(Debug)]
struct HistogramCore {
    bounds: Vec<f64>,
    counts: Vec<AtomicU64>, // one per bound + overflow
    total: AtomicU64,
    /// Sum in f64 bits, updated by compare-exchange (cold enough).
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

/// A point-in-time copy of a histogram's state.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds (the overflow bucket is implicit).
    pub bounds: Vec<f64>,
    /// Per-bucket counts, one per bound plus the overflow bucket.
    pub counts: Vec<u64>,
    /// Total number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: f64,
    /// Smallest observed value (`NAN` when empty).
    pub min: f64,
    /// Largest observed value (`NAN` when empty).
    pub max: f64,
}

impl HistogramSnapshot {
    /// Mean of the observed values (`NAN` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`) by intra-bucket linear
    /// interpolation, clamped to the observed `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "q={q} out of [0, 1]");
        if self.count == 0 {
            return f64::NAN;
        }
        let rank = q * (self.count as f64 - 1.0);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let bucket_end_rank = (seen + c - 1) as f64;
            if rank <= bucket_end_rank {
                let lower = if i == 0 {
                    self.min
                } else {
                    self.bounds[i - 1].max(self.min)
                };
                let upper = if i < self.bounds.len() {
                    self.bounds[i].min(self.max)
                } else {
                    self.max
                };
                if c == 1 {
                    return lower.clamp(self.min, self.max);
                }
                let within = (rank - seen as f64) / (c - 1) as f64;
                return (lower + within * (upper - lower)).clamp(self.min, self.max);
            }
            seen += c;
        }
        self.max
    }
}

impl Histogram {
    /// A histogram that ignores all updates.
    pub fn disabled() -> Self {
        Histogram(None)
    }

    /// A standalone live histogram (outside any registry).
    pub fn with_buckets(buckets: Buckets) -> Self {
        let n = buckets.bounds.len();
        Histogram(Some(Arc::new(HistogramCore {
            bounds: buckets.bounds,
            counts: (0..=n).map(|_| AtomicU64::new(0)).collect(),
            total: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        })))
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&self, value: f64) {
        let Some(core) = &self.0 else { return };
        let idx = core.bounds.partition_point(|&bound| bound < value);
        core.counts[idx].fetch_add(1, Ordering::Relaxed);
        core.total.fetch_add(1, Ordering::Relaxed);
        // Lossy-free f64 accumulation via CAS; contention here is bounded
        // by the event rate, and Relaxed is fine — the snapshot reader
        // only needs eventual consistency.
        let mut current = core.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + value).to_bits();
            match core.sum_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => current = actual,
            }
        }
        atomic_f64_min(&core.min_bits, value);
        atomic_f64_max(&core.max_bits, value);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |core| core.total.load(Ordering::Relaxed))
    }

    /// Copies out the current state (empty snapshot when disabled).
    pub fn snapshot(&self) -> HistogramSnapshot {
        match &self.0 {
            None => HistogramSnapshot {
                bounds: Vec::new(),
                counts: Vec::new(),
                count: 0,
                sum: 0.0,
                min: f64::NAN,
                max: f64::NAN,
            },
            Some(core) => {
                let count = core.total.load(Ordering::Relaxed);
                let (min, max) = if count == 0 {
                    (f64::NAN, f64::NAN)
                } else {
                    (
                        f64::from_bits(core.min_bits.load(Ordering::Relaxed)),
                        f64::from_bits(core.max_bits.load(Ordering::Relaxed)),
                    )
                };
                HistogramSnapshot {
                    bounds: core.bounds.clone(),
                    counts: core
                        .counts
                        .iter()
                        .map(|c| c.load(Ordering::Relaxed))
                        .collect(),
                    count,
                    sum: f64::from_bits(core.sum_bits.load(Ordering::Relaxed)),
                    min,
                    max,
                }
            }
        }
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`); `NAN` when empty or
    /// disabled.
    pub fn quantile(&self, q: f64) -> f64 {
        self.snapshot().quantile(q)
    }
}

fn atomic_f64_min(cell: &AtomicU64, value: f64) {
    let mut current = cell.load(Ordering::Relaxed);
    while value < f64::from_bits(current) {
        match cell.compare_exchange_weak(
            current,
            value.to_bits(),
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => break,
            Err(actual) => current = actual,
        }
    }
}

fn atomic_f64_max(cell: &AtomicU64, value: f64) {
    let mut current = cell.load(Ordering::Relaxed);
    while value > f64::from_bits(current) {
        match cell.compare_exchange_weak(
            current,
            value.to_bits(),
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => break,
            Err(actual) => current = actual,
        }
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A point-in-time value of one registered metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter total.
    Counter(u64),
    /// Gauge `(current, max)`.
    Gauge(u64, u64),
    /// Full histogram state.
    Histogram(HistogramSnapshot),
}

/// A named collection of metrics shared across the pipeline.
///
/// Lookup/registration takes a mutex; returned handles are lock-free.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns (registering on first use) the counter `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        let mut metrics = self.metrics.lock().expect("metrics poisoned");
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::live()))
        {
            Metric::Counter(c) => c.clone(),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Returns (registering on first use) the gauge `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut metrics = self.metrics.lock().expect("metrics poisoned");
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::live()))
        {
            Metric::Gauge(g) => g.clone(),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Returns (registering on first use) the histogram `name` with the
    /// given layout. The layout of an already-registered histogram wins.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str, buckets: Buckets) -> Histogram {
        let mut metrics = self.metrics.lock().expect("metrics poisoned");
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::with_buckets(buckets)))
        {
            Metric::Histogram(h) => h.clone(),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Snapshots every registered metric, sorted by name.
    pub fn snapshot(&self) -> BTreeMap<String, MetricValue> {
        let metrics = self.metrics.lock().expect("metrics poisoned");
        metrics
            .iter()
            .map(|(name, metric)| {
                let value = match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get(), g.max()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                };
                (name.clone(), value)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("events");
        c.inc();
        c.add(4);
        assert_eq!(reg.counter("events").get(), 5);

        let g = reg.gauge("chain");
        g.set(3);
        g.set(1);
        assert_eq!(g.get(), 1);
        assert_eq!(g.max(), 3);
    }

    #[test]
    fn disabled_metrics_swallow_updates() {
        let c = Counter::disabled();
        c.inc();
        assert_eq!(c.get(), 0);
        let h = Histogram::disabled();
        h.observe(1.0);
        assert_eq!(h.count(), 0);
        assert!(h.quantile(0.5).is_nan());
    }

    #[test]
    fn histogram_buckets_and_bounds() {
        let h = Histogram::with_buckets(Buckets::linear(0.0, 1.0, 10));
        for i in 0..100 {
            h.observe(i as f64 / 100.0);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 100);
        assert_eq!(snap.counts.iter().sum::<u64>(), 100);
        assert!((snap.mean() - 0.495).abs() < 1e-9);
        assert_eq!(snap.min, 0.0);
        assert_eq!(snap.max, 0.99);
    }

    #[test]
    fn histogram_quantiles_are_monotone_and_bounded() {
        let h = Histogram::with_buckets(Buckets::exponential(1.0, 2.0, 16));
        for i in 1..=1000 {
            h.observe(i as f64);
        }
        let mut last = f64::NEG_INFINITY;
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            let v = h.quantile(q);
            assert!(v >= last, "quantile({q}) = {v} < {last}");
            assert!((1.0..=1000.0).contains(&v));
            last = v;
        }
        assert_eq!(h.quantile(1.0), 1000.0);
        assert_eq!(h.quantile(0.0), 1.0);
    }

    #[test]
    fn overflow_bucket_catches_everything() {
        let h = Histogram::with_buckets(Buckets::linear(0.0, 1.0, 2));
        h.observe(50.0);
        let snap = h.snapshot();
        assert_eq!(*snap.counts.last().unwrap(), 1);
        assert_eq!(snap.max, 50.0);
        assert_eq!(h.quantile(1.0), 50.0);
    }

    #[test]
    fn shared_across_threads() {
        let reg = Arc::new(MetricsRegistry::new());
        let c = reg.counter("parallel");
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let c = c.clone();
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 40_000);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("x");
        reg.gauge("x");
    }
}
