//! Fleet-scale fitting for CausalIoT.
//!
//! The serving layer (`iot-serve`) answers "is this event anomalous?"
//! for homes whose models already exist. This crate answers "how do ten
//! thousand models come to exist, and where do they live?":
//!
//! * [`ModelStore`] — a content-addressed, crash-safe repository of
//!   fitted models built on the v2 checkpoint format. Blobs are named by
//!   the CRC32 content hash the checkpoint's `# crc32` footer records,
//!   written with the same temp-file → fsync → atomic-rename discipline
//!   as checkpoints, and verified on every [`ModelStore::get`]. A
//!   per-home lineage log maps `home → [generation → hash]`;
//!   [`ModelStore::gc`] sweeps unreferenced blobs and
//!   [`ModelStore::fsck`] walks the whole store through the checkpoint
//!   loaders.
//! * [`run_sweep`] — a process-sharded sweep orchestrator: the parent
//!   re-execs the hosting binary with [`CHILD_FLAG`] to shard fit jobs
//!   across `k` child OS processes over a newline-delimited
//!   stdin/stdout protocol, with per-child retry and dead-job
//!   quarantine mirroring the serving layer's `RestorePolicy`. Child
//!   crashes cannot corrupt or diverge the store: puts are idempotent
//!   and lineage commits happen in the parent.
//!
//! The serving hub consumes stores wholesale via `Hub::bulk_load` /
//! `Hub::bulk_swap` (in `iot-serve`), upgrading a live fleet without
//! dropping or reordering an event.
//!
//! **Naming**: `ModelStore` stores *fitted models*;
//! [`iot_model::DeviceRegistry`] catalogues the *devices* of one home.
//! See the README's terminology note.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod orchestrator;
mod store;

pub use error::FleetError;
pub use orchestrator::{
    child_store_root, run_child, run_sweep, DeadJob, FitJob, SweepConfig, SweepReport, CHILD_FLAG,
};
pub use store::{FsckReport, GcReport, Generation, ModelHash, ModelStore};
