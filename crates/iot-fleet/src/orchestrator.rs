//! The process-sharded sweep orchestrator.
//!
//! A *sweep* fits one model per home for a whole fleet. The parent
//! process ([`run_sweep`]) shards the fit jobs across `k` child OS
//! processes — each a re-exec of the hosting binary with the
//! [`CHILD_FLAG`] argument — so a fleet fit uses every core without
//! sharing address space: a child that segfaults, OOMs, or is killed
//! takes only its in-flight job with it.
//!
//! ## Protocol
//!
//! Newline-delimited, tab-separated lines over the child's stdin/stdout
//! (stderr passes through for diagnostics):
//!
//! ```text
//! parent → child:   fit\t<home>\t<payload>
//! child  → parent:  ok\t<home>\t<content-hash>
//!                   err\t<home>\t<reason>
//! ```
//!
//! One job is in flight per child (stop-and-wait), jobs are pulled from
//! a shared queue on demand, and EOF on stdin tells the child to exit.
//! The child fits the model and [`ModelStore::put`]s it; the **parent**
//! commits the lineage generation only after the `ok` reply. Because
//! `put` is idempotent and content-addressed, a job retried after a
//! child death cannot change the store: the final store bytes are
//! identical to an unfaulted run (interrupted `put`s leave only
//! `*.tmp.<pid>` files, which [`ModelStore::gc`] sweeps).
//!
//! ## Failure policy
//!
//! Mirroring the serving layer's `RestorePolicy`, each job gets
//! [`SweepConfig::max_retries`] retries with [`SweepConfig::backoff`]
//! between child respawns; a job that keeps failing is quarantined into
//! [`SweepReport::quarantined`] as a [`DeadJob`] rather than wedging the
//! sweep.
//!
//! ## Hosting a child entry
//!
//! The binary that calls [`run_sweep`] must dispatch to [`run_child`]
//! when re-executed as a child — typically first thing in `main`:
//!
//! ```no_run
//! use iot_fleet::{child_store_root, run_child, FitJob, ModelStore};
//! # fn fit(job: &FitJob) -> Result<causaliot_core::FittedModel, String> { unimplemented!() }
//! fn main() {
//!     if let Some(root) = child_store_root(std::env::args()) {
//!         let store = ModelStore::open(root).expect("open store");
//!         run_child(&store, fit).expect("child protocol");
//!         return;
//!     }
//!     // ... normal entry: build jobs, call run_sweep ...
//! }
//! ```

use std::collections::VecDeque;
use std::io::{self, BufRead as _, BufReader, Write as _};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use causaliot_core::FittedModel;

use crate::error::FleetError;
use crate::store::{check_home_name, Generation, ModelHash, ModelStore};

/// The argument that re-enters the hosting binary as a sweep child; the
/// next argument is the model store root. See [`child_store_root`].
pub const CHILD_FLAG: &str = "--fleet-child";

/// One unit of sweep work: fit a model for `home`.
///
/// `payload` is an opaque single-line string the orchestrator carries to
/// the child's fit function verbatim — typically a seed, a dataset
/// path, or a small key=value spec. It must not contain tabs or
/// newlines (the protocol is line-oriented); [`run_sweep`] rejects jobs
/// that would break framing before spawning anything.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FitJob {
    /// The home this job fits (a valid lineage key, `[A-Za-z0-9._-]+`).
    pub home: String,
    /// Opaque job spec forwarded to the child's fit function.
    pub payload: String,
}

impl FitJob {
    /// Convenience constructor.
    pub fn new(home: impl Into<String>, payload: impl Into<String>) -> Self {
        FitJob {
            home: home.into(),
            payload: payload.into(),
        }
    }
}

/// How [`run_sweep`] shards and retries.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Number of child processes to shard across (≥ 1).
    pub workers: usize,
    /// Retries per job after its first failed attempt before the job is
    /// quarantined (`2` means up to 3 attempts total).
    pub max_retries: u32,
    /// Pause before respawning a dead child (mirrors
    /// `RestorePolicy::backoff`).
    pub backoff: Duration,
    /// The binary to re-exec as a child (usually the current
    /// executable, see [`SweepConfig::current_exe`]).
    pub exe: PathBuf,
    /// Extra arguments placed *before* the [`CHILD_FLAG`] when spawning
    /// children (e.g. a subcommand the hosting binary needs to route on).
    pub child_args: Vec<String>,
}

impl SweepConfig {
    /// A config re-execing the current executable with 4 workers,
    /// 2 retries, and a 50 ms respawn backoff.
    ///
    /// # Errors
    ///
    /// [`FleetError::Child`] when the current executable path cannot be
    /// determined.
    pub fn current_exe() -> Result<Self, FleetError> {
        let exe = std::env::current_exe().map_err(|e| FleetError::Child {
            reason: format!("cannot determine current executable: {e}"),
        })?;
        Ok(SweepConfig {
            workers: 4,
            max_retries: 2,
            backoff: Duration::from_millis(50),
            exe,
            child_args: Vec::new(),
        })
    }
}

/// A job that exhausted its retries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadJob {
    /// The quarantined job.
    pub job: FitJob,
    /// Total attempts made (first try + retries).
    pub attempts: u32,
    /// The last failure, verbatim.
    pub last_error: String,
}

/// What a sweep accomplished.
#[derive(Debug, Clone, Default)]
pub struct SweepReport {
    /// Every committed fit: home, the lineage generation the parent
    /// committed, and the stored model's content hash. Sorted by home.
    pub committed: Vec<(String, Generation, ModelHash)>,
    /// Jobs that exhausted their retries (dead-job quarantine).
    pub quarantined: Vec<DeadJob>,
    /// Child processes respawned after dying mid-sweep.
    pub child_restarts: u64,
    /// Total jobs submitted.
    pub jobs: usize,
}

/// Scans an argument list for [`CHILD_FLAG`] and returns the store root
/// that follows it — the hosting binary's cue to call [`run_child`]
/// instead of its normal entry. Returns `None` when the flag is absent
/// (including when it is the final argument, with no root after it).
pub fn child_store_root<I>(args: I) -> Option<PathBuf>
where
    I: IntoIterator<Item = String>,
{
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        if arg == CHILD_FLAG {
            return args.next().map(PathBuf::from);
        }
    }
    None
}

/// The child side of the sweep protocol: reads `fit` lines from stdin,
/// runs `fit` for each, [`ModelStore::put`]s successful models, and
/// replies `ok`/`err` on stdout until EOF.
///
/// A fit function returning `Err(reason)` becomes an `err` reply (the
/// parent retries or quarantines the job); this function itself only
/// fails on protocol or pipe breakage.
///
/// # Errors
///
/// [`FleetError::Child`] on a malformed job line or a broken
/// stdin/stdout pipe.
pub fn run_child<F>(store: &ModelStore, mut fit: F) -> Result<(), FleetError>
where
    F: FnMut(&FitJob) -> Result<FittedModel, String>,
{
    let stdin = io::stdin();
    let stdout = io::stdout();
    let mut out = stdout.lock();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| FleetError::Child {
            reason: format!("stdin read failed: {e}"),
        })?;
        let job = parse_job_line(&line).map_err(|reason| FleetError::Child { reason })?;
        let reply = match fit(&job).and_then(|model| {
            store
                .put(&model)
                .map_err(|e| format!("store put failed: {e}"))
        }) {
            Ok(hash) => ok_line(&job.home, hash),
            Err(reason) => err_line(&job.home, &reason),
        };
        writeln!(out, "{reply}")
            .and_then(|()| out.flush())
            .map_err(|e| FleetError::Child {
                reason: format!("stdout write failed: {e}"),
            })?;
    }
    Ok(())
}

/// The parent side: shards `jobs` across [`SweepConfig::workers`] child
/// processes and drives them to completion.
///
/// Jobs are validated up front (home names must be lineage keys, no
/// tabs/newlines anywhere, homes must be unique — one writer per
/// lineage). Lineage commits happen here, in the parent, after each `ok`
/// reply; a killed child's in-flight job is retried on a fresh child and,
/// thanks to idempotent content-addressed `put`s, the resulting store is
/// byte-identical to an unfaulted sweep.
///
/// # Errors
///
/// [`FleetError::InvalidHome`] / [`FleetError::Child`] for malformed or
/// duplicate jobs, and any store error raised while committing lineages.
/// Jobs that merely keep failing do **not** error the sweep — they land
/// in [`SweepReport::quarantined`].
pub fn run_sweep(
    store: &ModelStore,
    jobs: Vec<FitJob>,
    config: &SweepConfig,
) -> Result<SweepReport, FleetError> {
    if config.workers == 0 {
        return Err(FleetError::Child {
            reason: "SweepConfig.workers must be at least 1".to_string(),
        });
    }
    let mut seen = std::collections::BTreeSet::new();
    for job in &jobs {
        check_home_name(&job.home)?;
        if job.payload.contains('\t') || job.payload.contains('\n') {
            return Err(FleetError::Child {
                reason: format!("job for `{}` has a tab/newline in its payload", job.home),
            });
        }
        if !seen.insert(job.home.clone()) {
            return Err(FleetError::Child {
                reason: format!("duplicate job for home `{}`", job.home),
            });
        }
    }

    let total = jobs.len();
    let queue: Mutex<VecDeque<(FitJob, u32)>> =
        Mutex::new(jobs.into_iter().map(|j| (j, 0u32)).collect());
    let state: Mutex<SweepState> = Mutex::new(SweepState::default());
    let restarts = AtomicU64::new(0);
    let workers = config.workers.min(total.max(1));

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| worker_loop(store, config, &queue, &state, &restarts));
        }
    });

    let state = state.into_inner().expect("sweep state lock poisoned");
    if let Some(fatal) = state.fatal {
        return Err(fatal);
    }
    let mut committed = state.committed;
    committed.sort();
    let report = SweepReport {
        committed,
        quarantined: state.quarantined,
        child_restarts: restarts.load(Ordering::Relaxed),
        jobs: total,
    };
    let telemetry = store.telemetry();
    telemetry
        .counter("fleet.sweep.committed")
        .add(report.committed.len() as u64);
    telemetry
        .counter("fleet.sweep.quarantined")
        .add(report.quarantined.len() as u64);
    telemetry
        .counter("fleet.sweep.child_restarts")
        .add(report.child_restarts);
    Ok(report)
}

#[derive(Default)]
struct SweepState {
    committed: Vec<(String, Generation, ModelHash)>,
    quarantined: Vec<DeadJob>,
    fatal: Option<FleetError>,
}

/// One worker thread: owns (at most) one child process and drives jobs
/// through it stop-and-wait until the queue drains or a fatal store
/// error surfaces.
fn worker_loop(
    store: &ModelStore,
    config: &SweepConfig,
    queue: &Mutex<VecDeque<(FitJob, u32)>>,
    state: &Mutex<SweepState>,
    restarts: &AtomicU64,
) {
    let mut child: Option<ChildProc> = None;
    loop {
        if state
            .lock()
            .expect("sweep state lock poisoned")
            .fatal
            .is_some()
        {
            break;
        }
        let Some((job, attempts)) = queue.lock().expect("sweep queue lock poisoned").pop_front()
        else {
            break;
        };
        if child.is_none() {
            match ChildProc::spawn(config, store) {
                Ok(proc) => child = Some(proc),
                Err(e) => {
                    // Cannot host any child: this worker is useless. Put
                    // the job back for the others and record the failure
                    // as fatal in case every worker hits it.
                    queue
                        .lock()
                        .expect("sweep queue lock poisoned")
                        .push_front((job, attempts));
                    let mut st = state.lock().expect("sweep state lock poisoned");
                    st.fatal.get_or_insert(e);
                    break;
                }
            }
        }
        let proc = child.as_mut().expect("child just ensured");
        match proc.exchange(&job) {
            Ok(Ok(hash)) => match store.commit(&job.home, hash) {
                Ok(generation) => {
                    let mut st = state.lock().expect("sweep state lock poisoned");
                    st.committed.push((job.home.clone(), generation, hash));
                }
                Err(e) => {
                    let mut st = state.lock().expect("sweep state lock poisoned");
                    st.fatal.get_or_insert(e);
                    break;
                }
            },
            Ok(Err(reason)) => {
                // The child is healthy; the job itself failed.
                requeue_or_quarantine(queue, state, config.max_retries, job, attempts, reason);
            }
            Err(reason) => {
                // The child died (or broke protocol): discard it, back
                // off, and retry the job on a fresh child.
                if let Some(dead) = child.take() {
                    dead.discard();
                }
                restarts.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(config.backoff);
                requeue_or_quarantine(queue, state, config.max_retries, job, attempts, reason);
            }
        }
    }
    if let Some(proc) = child.take() {
        proc.finish();
    }
}

/// Shared failure path: a job that has retries left goes to the back of
/// the queue; one that exhausted them is quarantined as a [`DeadJob`].
fn requeue_or_quarantine(
    queue: &Mutex<VecDeque<(FitJob, u32)>>,
    state: &Mutex<SweepState>,
    max_retries: u32,
    job: FitJob,
    attempts: u32,
    reason: String,
) {
    let attempts = attempts + 1;
    if attempts > max_retries {
        state
            .lock()
            .expect("sweep state lock poisoned")
            .quarantined
            .push(DeadJob {
                job,
                attempts,
                last_error: reason,
            });
    } else {
        queue
            .lock()
            .expect("sweep queue lock poisoned")
            .push_back((job, attempts));
    }
}

/// A spawned sweep child with buffered pipes.
struct ChildProc {
    child: Child,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
}

impl ChildProc {
    fn spawn(config: &SweepConfig, store: &ModelStore) -> Result<Self, FleetError> {
        let mut child = Command::new(&config.exe)
            .args(&config.child_args)
            .arg(CHILD_FLAG)
            .arg(store.root())
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .map_err(|e| FleetError::Child {
                reason: format!("failed to spawn {}: {e}", config.exe.display()),
            })?;
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
        Ok(ChildProc {
            child,
            stdin,
            stdout,
        })
    }

    /// Sends one job and awaits its reply. `Ok(Ok(hash))` is a committed
    /// fit, `Ok(Err(reason))` a job-level failure from a healthy child,
    /// `Err(reason)` a dead or protocol-breaking child.
    fn exchange(&mut self, job: &FitJob) -> Result<Result<ModelHash, String>, String> {
        writeln!(self.stdin, "{}", job_line(job))
            .and_then(|()| self.stdin.flush())
            .map_err(|e| format!("child stdin write failed: {e}"))?;
        let mut line = String::new();
        let n = self
            .stdout
            .read_line(&mut line)
            .map_err(|e| format!("child stdout read failed: {e}"))?;
        if n == 0 {
            return Err("child exited before replying".to_string());
        }
        let (home, outcome) = parse_reply_line(line.trim_end_matches('\n'))?;
        if home != job.home {
            return Err(format!(
                "protocol error: reply for `{home}` while `{}` was in flight",
                job.home
            ));
        }
        Ok(outcome)
    }

    /// Abandons a dead/broken child: kill (best-effort) and reap.
    fn discard(mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    /// Graceful shutdown: close stdin (EOF tells the child to exit) and
    /// reap it.
    fn finish(self) {
        drop(self.stdin);
        let mut child = self.child;
        let _ = child.wait();
    }
}

fn job_line(job: &FitJob) -> String {
    format!("fit\t{}\t{}", job.home, job.payload)
}

fn ok_line(home: &str, hash: ModelHash) -> String {
    format!("ok\t{home}\t{hash}")
}

fn err_line(home: &str, reason: &str) -> String {
    // Keep the frame single-line whatever the reason contains.
    let flat: String = reason
        .chars()
        .map(|c| if c == '\n' || c == '\t' { ' ' } else { c })
        .collect();
    format!("err\t{home}\t{flat}")
}

fn parse_job_line(line: &str) -> Result<FitJob, String> {
    let mut parts = line.splitn(3, '\t');
    match (parts.next(), parts.next(), parts.next()) {
        (Some("fit"), Some(home), Some(payload)) if !home.is_empty() => {
            Ok(FitJob::new(home, payload))
        }
        _ => Err(format!("malformed job line `{line}`")),
    }
}

/// Parses a child reply into `(home, Ok(hash) | Err(reason))`.
fn parse_reply_line(line: &str) -> Result<(String, Result<ModelHash, String>), String> {
    let mut parts = line.splitn(3, '\t');
    match (parts.next(), parts.next(), parts.next()) {
        (Some("ok"), Some(home), Some(hash)) => {
            let hash = hash
                .parse::<ModelHash>()
                .map_err(|e| format!("malformed reply `{line}`: {e}"))?;
            Ok((home.to_string(), Ok(hash)))
        }
        (Some("err"), Some(home), Some(reason)) => Ok((home.to_string(), Err(reason.to_string()))),
        _ => Err(format!("malformed reply line `{line}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_lines_round_trip() {
        let job = FitJob::new("home-07", "seed=7 events=240");
        let parsed = parse_job_line(&job_line(&job)).unwrap();
        assert_eq!(parsed, job);
    }

    #[test]
    fn malformed_job_lines_are_rejected() {
        for bad in ["", "fit", "fit\thome", "swap\thome\tp", "fit\t\tpayload"] {
            assert!(parse_job_line(bad).is_err(), "`{bad}` must be rejected");
        }
    }

    #[test]
    fn ok_replies_round_trip() {
        let hash = ModelHash::from_value(0xDEAD_BEEF);
        let (home, outcome) = parse_reply_line(&ok_line("home-3", hash)).unwrap();
        assert_eq!(home, "home-3");
        assert_eq!(outcome.unwrap(), hash);
    }

    #[test]
    fn err_replies_round_trip_and_stay_single_line() {
        let (home, outcome) =
            parse_reply_line(&err_line("home-3", "fit failed:\n\ttwo lines")).unwrap();
        assert_eq!(home, "home-3");
        let reason = outcome.unwrap_err();
        assert!(!reason.contains('\n') && !reason.contains('\t'), "{reason}");
        assert!(reason.contains("fit failed"));
    }

    #[test]
    fn malformed_replies_are_rejected() {
        for bad in ["", "ok\thome", "ok\thome\tnothex", "yes\thome\t00000000"] {
            assert!(parse_reply_line(bad).is_err(), "`{bad}` must be rejected");
        }
    }

    #[test]
    fn child_store_root_scans_argv() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(
            child_store_root(args(&["exe", "--fleet-child", "/tmp/store"])),
            Some(PathBuf::from("/tmp/store"))
        );
        assert_eq!(
            child_store_root(args(&["exe", "sub", "--fleet-child", "root", "x"])),
            Some(PathBuf::from("root"))
        );
        assert_eq!(child_store_root(args(&["exe", "--other"])), None);
        assert_eq!(child_store_root(args(&["exe", "--fleet-child"])), None);
    }
}
