//! The content-addressed, crash-safe model store.
//!
//! ## Layout
//!
//! ```text
//! <root>/
//!   blobs/<hash>.model      one v2 checkpoint per distinct model,
//!                           footered (`# crc32`), named by content hash
//!   lineage/<home>.log      one line per generation: "<gen> <hash>"
//! ```
//!
//! Blobs are immutable once written: [`ModelStore::put`] serialises the
//! model (byte-stable, see
//! [`causaliot_core::pipeline::checkpoint::save_model_footered`]), hashes
//! it, and — if the blob does not already exist — writes it through the
//! same temp-file → fsync → atomic-rename discipline the checkpoint
//! writer uses, so an interrupted `put` leaves no partial blob visible
//! (only a uniquely-named `*.tmp.<pid>` sibling, which [`ModelStore::gc`]
//! sweeps). A `put` of a model already in the store is a no-op returning
//! the existing key, which makes retried fit jobs idempotent: re-running
//! a job produces byte-identical store contents.
//!
//! Lineage logs are committed the same way (whole file rewritten to a
//! temp sibling, fsynced, renamed), so a reader never observes a
//! half-appended generation.

use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::str::FromStr;

use causaliot_core::pipeline::checkpoint;
use causaliot_core::{CausalIotError, FittedModel};
use iot_telemetry::{Counter, TelemetryHandle};

use crate::error::FleetError;

/// A monotonically increasing, per-home model version number. The first
/// committed generation of a home is `1`.
pub type Generation = u64;

/// The content hash addressing one blob in a [`ModelStore`] — the CRC32
/// of the model's serialised v2 checkpoint (the exact value the
/// checkpoint's `# crc32` footer records, see
/// [`causaliot_core::pipeline::checkpoint::content_hash`]).
///
/// Displays (and parses) as 8 lowercase hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ModelHash(u32);

impl ModelHash {
    /// The content hash `model` would be stored under.
    pub fn of(model: &FittedModel) -> Self {
        ModelHash(model.content_hash())
    }

    /// Wraps a raw CRC32 value (the inverse of [`ModelHash::value`]).
    pub fn from_value(value: u32) -> Self {
        ModelHash(value)
    }

    /// The raw CRC32 value.
    pub fn value(&self) -> u32 {
        self.0
    }
}

impl fmt::Display for ModelHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:08x}", self.0)
    }
}

impl FromStr for ModelHash {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.len() != 8 {
            return Err(format!("expected 8 hex digits, got `{s}`"));
        }
        u32::from_str_radix(s, 16)
            .map(ModelHash)
            .map_err(|_| format!("bad content hash `{s}`"))
    }
}

/// What [`ModelStore::gc`] did: blobs kept/swept and interrupted-put
/// temp files cleaned.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Blobs still referenced by some lineage generation.
    pub kept: usize,
    /// Unreferenced blobs removed, by hash.
    pub swept: Vec<ModelHash>,
    /// Leftover `*.tmp.<pid>` files from interrupted `put`s removed.
    pub tmp_cleaned: usize,
}

/// What [`ModelStore::fsck`] found.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FsckReport {
    /// Blobs walked (every one loaded and hash-verified).
    pub blobs_checked: usize,
    /// Lineage logs walked (every line parsed, every hash resolved).
    pub lineages_checked: usize,
    /// Human-readable description of every problem found. Empty means
    /// the store is fully consistent.
    pub issues: Vec<String>,
}

impl FsckReport {
    /// Whether the walk found no problems.
    pub fn is_clean(&self) -> bool {
        self.issues.is_empty()
    }
}

/// A content-addressed, crash-safe repository of fitted models for a
/// fleet of homes, built on the v2 checkpoint format.
///
/// * [`ModelStore::put`] files a model under its [`ModelHash`]
///   (idempotent; a hash collision between *different* documents is
///   detected and refused).
/// * [`ModelStore::commit`] appends a new [`Generation`] to a home's
///   lineage log, atomically.
/// * [`ModelStore::resolve`] answers "which model serves this home?"
///   (the lineage head); [`ModelStore::get`] loads a blob, failing
///   closed with [`CausalIotError::Corrupt`] (inside
///   [`FleetError::Model`]) on any flipped bit — the CRC that names the
///   blob also verifies it.
/// * [`ModelStore::gc`] sweeps blobs no lineage references;
///   [`ModelStore::fsck`] is a full integrity walk reusing the
///   checkpoint loaders.
///
/// **Naming note**: this store tracks the fleet's *models* — one lineage
/// of fitted checkpoints per home. The per-home catalogue of *devices*
/// is [`iot_model::DeviceRegistry`]; the two are different layers, see
/// the README's terminology note.
///
/// Concurrent `put`/`commit` from multiple processes is safe as long as
/// writers follow this module's discipline (unique temp names, atomic
/// renames) and distinct homes are committed by distinct writers — the
/// sweep orchestrator's one-job-per-home sharding guarantees both.
/// `gc` must not run concurrently with writers.
#[derive(Debug, Clone)]
pub struct ModelStore {
    root: PathBuf,
    telemetry: TelemetryHandle,
    puts: Counter,
    put_dedups: Counter,
    gets: Counter,
}

impl ModelStore {
    /// Opens (creating directories as needed) the store rooted at
    /// `root`, with the `CAUSALIOT_TELEMETRY`-derived telemetry handle.
    ///
    /// # Errors
    ///
    /// [`FleetError::Io`] when the directories cannot be created.
    pub fn open(root: impl AsRef<Path>) -> Result<Self, FleetError> {
        Self::open_with_telemetry(root, &TelemetryHandle::from_env())
    }

    /// Opens the store reporting to an explicit telemetry handle
    /// (counters `fleet.store.puts`, `fleet.store.put_dedups`,
    /// `fleet.store.gets`).
    ///
    /// # Errors
    ///
    /// Same conditions as [`ModelStore::open`].
    pub fn open_with_telemetry(
        root: impl AsRef<Path>,
        telemetry: &TelemetryHandle,
    ) -> Result<Self, FleetError> {
        let root = root.as_ref().to_path_buf();
        for dir in [root.join("blobs"), root.join("lineage")] {
            fs::create_dir_all(&dir).map_err(|e| io_err(&dir, &e))?;
        }
        Ok(ModelStore {
            root,
            telemetry: telemetry.clone(),
            puts: telemetry.counter("fleet.store.puts"),
            put_dedups: telemetry.counter("fleet.store.put_dedups"),
            gets: telemetry.counter("fleet.store.gets"),
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The telemetry handle the store reports to (shared with loaded
    /// models and, in a sweep, the orchestrator's counters).
    pub(crate) fn telemetry(&self) -> &TelemetryHandle {
        &self.telemetry
    }

    fn blob_path(&self, hash: ModelHash) -> PathBuf {
        self.root.join("blobs").join(format!("{hash}.model"))
    }

    fn lineage_path(&self, home: &str) -> PathBuf {
        self.root.join("lineage").join(format!("{home}.log"))
    }

    /// Files `model` under its content hash and returns the key.
    ///
    /// Idempotent: putting a model whose blob already exists verifies
    /// the stored bytes match and returns the existing key without
    /// writing (so a retried fit job cannot change the store). The write
    /// path is crash-safe — document to a unique `*.tmp.<pid>` sibling,
    /// fsync, atomic rename — so an interrupted `put` never leaves a
    /// partial blob visible under its final name.
    ///
    /// # Errors
    ///
    /// [`FleetError::Io`] on filesystem failure,
    /// [`FleetError::HashCollision`] when a *different* document already
    /// occupies the key.
    pub fn put(&self, model: &FittedModel) -> Result<ModelHash, FleetError> {
        let (text, checksum) = checkpoint::save_model_footered(model);
        let hash = ModelHash(checksum);
        let path = self.blob_path(hash);
        if path.exists() {
            let existing = fs::read_to_string(&path).map_err(|e| io_err(&path, &e))?;
            if existing != text {
                return Err(FleetError::HashCollision { hash });
            }
            self.put_dedups.inc();
            return Ok(hash);
        }
        let tmp = path.with_extension(format!("model.tmp.{}", std::process::id()));
        let write = (|| -> io::Result<()> {
            let mut file = fs::File::create(&tmp)?;
            file.write_all(text.as_bytes())?;
            file.sync_all()?;
            fs::rename(&tmp, &path)?;
            if let Ok(dir) = fs::File::open(path.parent().expect("blob has a parent")) {
                let _ = dir.sync_all();
            }
            Ok(())
        })();
        write.map_err(|e| {
            let _ = fs::remove_file(&tmp);
            io_err(&path, &e)
        })?;
        self.puts.inc();
        Ok(hash)
    }

    /// Loads the blob addressed by `hash`.
    ///
    /// The blob is loaded through the checkpoint loader (CRC footer
    /// verified, parse failures carry path and byte offset) and its
    /// content hash is re-checked against the requested key, so a
    /// bit-flipped or mis-filed blob is refused with
    /// [`CausalIotError::Corrupt`] rather than served.
    ///
    /// # Errors
    ///
    /// [`FleetError::MissingBlob`] when no blob has this hash;
    /// [`FleetError::Model`] wrapping the loader's
    /// [`CausalIotError::Corrupt`] / [`CausalIotError::Truncated`] /
    /// [`CausalIotError::Io`] otherwise.
    pub fn get(&self, hash: ModelHash) -> Result<FittedModel, FleetError> {
        let path = self.blob_path(hash);
        if !path.exists() {
            return Err(FleetError::MissingBlob { hash });
        }
        let model = FittedModel::load_from_path_with_telemetry(&path, &self.telemetry)?;
        let actual = ModelHash::of(&model);
        if actual != hash {
            return Err(FleetError::Model(CausalIotError::Corrupt {
                path: path.display().to_string(),
                offset: 0,
                reason: format!("content hash mismatch (addressed {hash}, found {actual})"),
            }));
        }
        self.gets.inc();
        Ok(model)
    }

    /// Appends a new generation pointing at `hash` to `home`'s lineage
    /// log and returns the generation number (the first commit of a home
    /// is generation 1). The whole log is rewritten to a temp sibling
    /// and atomically renamed, so a crash mid-commit leaves the previous
    /// lineage intact.
    ///
    /// # Errors
    ///
    /// [`FleetError::InvalidHome`] for an unusable name,
    /// [`FleetError::MissingBlob`] when `hash` has no blob (commits may
    /// only reference stored models), [`FleetError::Lineage`] /
    /// [`FleetError::Io`] on a malformed or unwritable log.
    pub fn commit(&self, home: &str, hash: ModelHash) -> Result<Generation, FleetError> {
        check_home_name(home)?;
        if !self.blob_path(hash).exists() {
            return Err(FleetError::MissingBlob { hash });
        }
        let lineage = self.lineage(home)?;
        let generation = lineage.last().map_or(0, |(gen, _)| *gen) + 1;
        let path = self.lineage_path(home);
        let mut text = String::new();
        for (gen, h) in &lineage {
            text.push_str(&format!("{gen} {h}\n"));
        }
        text.push_str(&format!("{generation} {hash}\n"));
        let tmp = path.with_extension(format!("log.tmp.{}", std::process::id()));
        let write = (|| -> io::Result<()> {
            let mut file = fs::File::create(&tmp)?;
            file.write_all(text.as_bytes())?;
            file.sync_all()?;
            fs::rename(&tmp, &path)?;
            if let Ok(dir) = fs::File::open(path.parent().expect("lineage has a parent")) {
                let _ = dir.sync_all();
            }
            Ok(())
        })();
        write.map_err(|e| {
            let _ = fs::remove_file(&tmp);
            io_err(&path, &e)
        })?;
        Ok(generation)
    }

    /// Drops the head of `home`'s lineage, making the previous
    /// generation the new head — the recovery path when a refit or
    /// rollout turns out bad. The dropped generation's blob is *not*
    /// deleted (it may be shared; [`ModelStore::gc`] collects it once no
    /// lineage references it). The log is rewritten with the same
    /// temp-file → fsync → atomic-rename discipline as
    /// [`ModelStore::commit`], and the `fleet.store.rollbacks` counter
    /// ticks. Returns the new head.
    ///
    /// # Errors
    ///
    /// [`FleetError::InvalidHome`] for an unusable name,
    /// [`FleetError::UnknownHome`] for a home with no commits,
    /// [`FleetError::Lineage`] when only one generation exists (there is
    /// nothing to roll back *to*), [`FleetError::Io`] on an unwritable
    /// log.
    pub fn rollback(&self, home: &str) -> Result<(Generation, ModelHash), FleetError> {
        check_home_name(home)?;
        let lineage = self.lineage(home)?;
        let path = self.lineage_path(home);
        if lineage.is_empty() {
            return Err(FleetError::UnknownHome {
                name: home.to_string(),
            });
        }
        if lineage.len() == 1 {
            return Err(FleetError::Lineage {
                path: path.display().to_string(),
                reason: format!(
                    "cannot roll back generation {}: no prior generation",
                    lineage[0].0
                ),
            });
        }
        let kept = &lineage[..lineage.len() - 1];
        let mut text = String::new();
        for (gen, h) in kept {
            text.push_str(&format!("{gen} {h}\n"));
        }
        let tmp = path.with_extension(format!("log.tmp.{}", std::process::id()));
        let write = (|| -> io::Result<()> {
            let mut file = fs::File::create(&tmp)?;
            file.write_all(text.as_bytes())?;
            file.sync_all()?;
            fs::rename(&tmp, &path)?;
            if let Ok(dir) = fs::File::open(path.parent().expect("lineage has a parent")) {
                let _ = dir.sync_all();
            }
            Ok(())
        })();
        write.map_err(|e| {
            let _ = fs::remove_file(&tmp);
            io_err(&path, &e)
        })?;
        self.telemetry.counter("fleet.store.rollbacks").inc();
        Ok(*kept.last().expect("kept is non-empty"))
    }

    /// The head of `home`'s lineage — the generation and hash of the
    /// model currently serving it — or `None` for a home with no
    /// commits.
    ///
    /// # Errors
    ///
    /// [`FleetError::InvalidHome`] / [`FleetError::Lineage`] /
    /// [`FleetError::Io`] as for [`ModelStore::lineage`].
    pub fn resolve(&self, home: &str) -> Result<Option<(Generation, ModelHash)>, FleetError> {
        Ok(self.lineage(home)?.last().copied())
    }

    /// `home`'s full lineage, oldest generation first (empty for a home
    /// never committed).
    ///
    /// # Errors
    ///
    /// [`FleetError::InvalidHome`] for an unusable name,
    /// [`FleetError::Lineage`] for a log that fails to parse,
    /// [`FleetError::Io`] when it cannot be read.
    pub fn lineage(&self, home: &str) -> Result<Vec<(Generation, ModelHash)>, FleetError> {
        check_home_name(home)?;
        let path = self.lineage_path(home);
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(io_err(&path, &e)),
        };
        parse_lineage(&text, &path)
    }

    /// Every home with a lineage log, sorted by name.
    ///
    /// # Errors
    ///
    /// [`FleetError::Io`] when the lineage directory cannot be listed.
    pub fn homes(&self) -> Result<Vec<String>, FleetError> {
        let dir = self.root.join("lineage");
        let mut homes = Vec::new();
        for entry in fs::read_dir(&dir).map_err(|e| io_err(&dir, &e))? {
            let entry = entry.map_err(|e| io_err(&dir, &e))?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(stem) = name.strip_suffix(".log") {
                homes.push(stem.to_string());
            }
        }
        homes.sort();
        Ok(homes)
    }

    /// Sweeps every blob not referenced by *any* lineage generation
    /// (heads and history alike — a blob a lineage can still resolve is
    /// never collected), and removes leftover `*.tmp.*` files from
    /// interrupted writes. Must not run concurrently with writers.
    ///
    /// # Errors
    ///
    /// [`FleetError::Io`] / [`FleetError::Lineage`] when the walk cannot
    /// complete; nothing is removed on error.
    pub fn gc(&self) -> Result<GcReport, FleetError> {
        let mut referenced = BTreeSet::new();
        for home in self.homes()? {
            for (_, hash) in self.lineage(&home)? {
                referenced.insert(hash);
            }
        }
        let dir = self.root.join("blobs");
        let mut report = GcReport::default();
        let mut doomed: Vec<PathBuf> = Vec::new();
        for entry in fs::read_dir(&dir).map_err(|e| io_err(&dir, &e))? {
            let entry = entry.map_err(|e| io_err(&dir, &e))?;
            let name = entry.file_name();
            let name = name.to_string_lossy().into_owned();
            if name.contains(".tmp.") {
                doomed.push(entry.path());
                report.tmp_cleaned += 1;
                continue;
            }
            let Some(hash) = name
                .strip_suffix(".model")
                .and_then(|stem| stem.parse::<ModelHash>().ok())
            else {
                continue;
            };
            if referenced.contains(&hash) {
                report.kept += 1;
            } else {
                doomed.push(entry.path());
                report.swept.push(hash);
            }
        }
        for path in doomed {
            fs::remove_file(&path).map_err(|e| io_err(&path, &e))?;
        }
        report.swept.sort();
        self.telemetry
            .counter("fleet.store.gc_swept")
            .add(report.swept.len() as u64);
        Ok(report)
    }

    /// Full integrity walk: loads and hash-verifies every blob (reusing
    /// the checkpoint loader's `Corrupt`/`Truncated` failure modes) and
    /// parses every lineage log, checking each referenced hash resolves
    /// to a blob and generations increase strictly. Read-only; problems
    /// are collected into the report, not raised.
    ///
    /// # Errors
    ///
    /// [`FleetError::Io`] only when a directory itself cannot be walked.
    pub fn fsck(&self) -> Result<FsckReport, FleetError> {
        let mut report = FsckReport::default();
        let dir = self.root.join("blobs");
        for entry in fs::read_dir(&dir).map_err(|e| io_err(&dir, &e))? {
            let entry = entry.map_err(|e| io_err(&dir, &e))?;
            let name = entry.file_name();
            let name = name.to_string_lossy().into_owned();
            if name.contains(".tmp.") {
                report.issues.push(format!(
                    "stale temp file {name} (interrupted put; gc() removes these)"
                ));
                continue;
            }
            let Some(hash) = name
                .strip_suffix(".model")
                .and_then(|stem| stem.parse::<ModelHash>().ok())
            else {
                report
                    .issues
                    .push(format!("unrecognised file {name} in blobs/"));
                continue;
            };
            report.blobs_checked += 1;
            if let Err(e) = self.get(hash) {
                report.issues.push(format!("blob {hash}: {e}"));
            }
        }
        for home in self.homes()? {
            report.lineages_checked += 1;
            match self.lineage(&home) {
                Err(e) => report.issues.push(format!("lineage {home}: {e}")),
                Ok(lineage) => {
                    let mut last = 0;
                    for (gen, hash) in lineage {
                        if gen <= last {
                            report.issues.push(format!(
                                "lineage {home}: generation {gen} does not increase past {last}"
                            ));
                        }
                        last = gen;
                        if !self.blob_path(hash).exists() {
                            report.issues.push(format!(
                                "lineage {home}: generation {gen} references missing blob {hash}"
                            ));
                        }
                    }
                }
            }
        }
        Ok(report)
    }
}

fn io_err(path: &Path, e: &io::Error) -> FleetError {
    FleetError::Io {
        path: path.display().to_string(),
        reason: e.to_string(),
    }
}

/// Validates a home name for use as a lineage key (and as a field in the
/// sweep protocol's line format): non-empty, `[A-Za-z0-9._-]` only.
pub(crate) fn check_home_name(home: &str) -> Result<(), FleetError> {
    let ok = !home.is_empty()
        && home
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'));
    if ok {
        Ok(())
    } else {
        Err(FleetError::InvalidHome {
            name: home.to_string(),
        })
    }
}

fn parse_lineage(text: &str, path: &Path) -> Result<Vec<(Generation, ModelHash)>, FleetError> {
    let err = |line: usize, reason: String| FleetError::Lineage {
        path: path.display().to_string(),
        reason: format!("line {line}: {reason}"),
    };
    let mut lineage = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let gen = parts
            .next()
            .and_then(|s| s.parse::<Generation>().ok())
            .ok_or_else(|| err(idx + 1, format!("bad generation in `{line}`")))?;
        let hash = parts
            .next()
            .and_then(|s| s.parse::<ModelHash>().ok())
            .ok_or_else(|| err(idx + 1, format!("bad content hash in `{line}`")))?;
        if parts.next().is_some() {
            return Err(err(idx + 1, format!("trailing fields in `{line}`")));
        }
        lineage.push((gen, hash));
    }
    Ok(lineage)
}

#[cfg(test)]
mod tests {
    use super::*;
    use causaliot_core::CausalIot;
    use iot_model::{Attribute, BinaryEvent, DeviceRegistry, Room, Timestamp};

    /// A scratch store rooted in a unique temp directory, removed on
    /// drop even when the test panics.
    struct ScratchStore {
        store: ModelStore,
        root: PathBuf,
    }

    impl ScratchStore {
        fn new(tag: &str) -> Self {
            let root = std::env::temp_dir().join(format!(
                "causaliot-fleet-store-{tag}-{}",
                std::process::id()
            ));
            let _ = fs::remove_dir_all(&root);
            let store = ModelStore::open(&root).expect("open scratch store");
            ScratchStore { store, root }
        }
    }

    impl Drop for ScratchStore {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.root);
        }
    }

    fn fitted(phase: u64) -> FittedModel {
        let mut reg = DeviceRegistry::new();
        let pe = reg
            .add("PE_room", Attribute::PresenceSensor, Room::new("room"))
            .unwrap();
        let lamp = reg
            .add("S_lamp", Attribute::Switch, Room::new("room"))
            .unwrap();
        let mut events = Vec::new();
        for i in 0..240u64 {
            let on = (i / 2 + phase).is_multiple_of(2);
            events.push(BinaryEvent::new(Timestamp::from_secs(i * 60), pe, on));
            if !(i + phase).is_multiple_of(5) {
                events.push(BinaryEvent::new(
                    Timestamp::from_secs(i * 60 + 15),
                    lamp,
                    on,
                ));
            }
        }
        CausalIot::builder()
            .tau(2)
            .build()
            .fit_binary(&reg, &events)
            .expect("fits")
    }

    #[test]
    fn put_get_round_trips_and_is_idempotent() {
        let scratch = ScratchStore::new("roundtrip");
        let model = fitted(0);
        let hash = scratch.store.put(&model).unwrap();
        assert_eq!(hash, ModelHash::of(&model));
        // Idempotent: the second put returns the same key, writes nothing.
        assert_eq!(scratch.store.put(&model).unwrap(), hash);
        let restored = scratch.store.get(hash).unwrap();
        assert_eq!(restored.save(), model.save());
        // No temp leftovers from a clean put.
        let gc = scratch.store.gc().unwrap();
        assert_eq!(gc.tmp_cleaned, 0);
    }

    #[test]
    fn missing_blob_is_reported_by_hash() {
        let scratch = ScratchStore::new("missing");
        let ghost = ModelHash::from_value(0x0123_4567);
        match scratch.store.get(ghost) {
            Err(FleetError::MissingBlob { hash }) => assert_eq!(hash, ghost),
            other => panic!("expected MissingBlob, got {other:?}"),
        }
    }

    #[test]
    fn commit_resolve_and_lineage_track_generations() {
        let scratch = ScratchStore::new("lineage");
        let (m1, m2) = (fitted(0), fitted(1));
        let h1 = scratch.store.put(&m1).unwrap();
        let h2 = scratch.store.put(&m2).unwrap();
        assert_ne!(h1, h2, "distinct models must hash differently");
        assert_eq!(scratch.store.resolve("home-a").unwrap(), None);
        assert_eq!(scratch.store.commit("home-a", h1).unwrap(), 1);
        assert_eq!(scratch.store.commit("home-a", h2).unwrap(), 2);
        assert_eq!(scratch.store.resolve("home-a").unwrap(), Some((2, h2)));
        assert_eq!(
            scratch.store.lineage("home-a").unwrap(),
            vec![(1, h1), (2, h2)]
        );
        assert_eq!(scratch.store.homes().unwrap(), vec!["home-a".to_string()]);
    }

    #[test]
    fn rollback_reverts_to_the_previous_generation() {
        let scratch = ScratchStore::new("rollback");
        let (m1, m2) = (fitted(0), fitted(1));
        let h1 = scratch.store.put(&m1).unwrap();
        let h2 = scratch.store.put(&m2).unwrap();
        scratch.store.commit("home-a", h1).unwrap();
        scratch.store.commit("home-a", h2).unwrap();
        assert_eq!(scratch.store.rollback("home-a").unwrap(), (1, h1));
        assert_eq!(scratch.store.resolve("home-a").unwrap(), Some((1, h1)));
        // The dropped blob survives until gc() sweeps it.
        assert!(scratch.store.get(h2).is_ok());
        // A fresh commit after the rollback resumes numbering past the
        // surviving head.
        assert_eq!(scratch.store.commit("home-a", h2).unwrap(), 2);
    }

    #[test]
    fn rollback_refuses_empty_and_single_generation_lineages() {
        let scratch = ScratchStore::new("rollback-refuse");
        assert!(matches!(
            scratch.store.rollback("ghost"),
            Err(FleetError::UnknownHome { .. })
        ));
        let hash = scratch.store.put(&fitted(0)).unwrap();
        scratch.store.commit("home-a", hash).unwrap();
        match scratch.store.rollback("home-a") {
            Err(FleetError::Lineage { reason, .. }) => {
                assert!(reason.contains("no prior generation"), "{reason}");
            }
            other => panic!("expected Lineage error, got {other:?}"),
        }
        // The refusal left the lineage untouched.
        assert_eq!(scratch.store.resolve("home-a").unwrap(), Some((1, hash)));
    }

    #[test]
    fn commit_requires_the_blob_to_exist() {
        let scratch = ScratchStore::new("dangling");
        let ghost = ModelHash::from_value(0xFEED_FACE);
        assert!(matches!(
            scratch.store.commit("home-a", ghost),
            Err(FleetError::MissingBlob { .. })
        ));
    }

    #[test]
    fn invalid_home_names_are_rejected() {
        let scratch = ScratchStore::new("names");
        let hash = scratch.store.put(&fitted(0)).unwrap();
        for bad in ["", "a/b", "a b", "a\tb", "..", "café"] {
            // ".." only contains valid chars; path traversal is the
            // concern for separators, which the charset already bans.
            if bad == ".." {
                continue;
            }
            assert!(
                matches!(
                    scratch.store.commit(bad, hash),
                    Err(FleetError::InvalidHome { .. })
                ),
                "name `{bad}` must be rejected"
            );
        }
        assert!(scratch.store.commit("Home_0.9-x", hash).is_ok());
    }

    #[test]
    fn gc_sweeps_only_unreferenced_blobs() {
        let scratch = ScratchStore::new("gc");
        let (m1, m2, m3) = (fitted(0), fitted(1), fitted(2));
        let h1 = scratch.store.put(&m1).unwrap();
        let h2 = scratch.store.put(&m2).unwrap();
        let h3 = scratch.store.put(&m3).unwrap();
        scratch.store.commit("home-a", h1).unwrap();
        scratch.store.commit("home-a", h2).unwrap(); // head
        let report = scratch.store.gc().unwrap();
        assert_eq!(report.swept, vec![h3]);
        assert_eq!(report.kept, 2);
        // History and head both survive.
        assert!(scratch.store.get(h1).is_ok());
        assert!(scratch.store.get(h2).is_ok());
        assert!(matches!(
            scratch.store.get(h3),
            Err(FleetError::MissingBlob { .. })
        ));
    }

    #[test]
    fn fsck_is_clean_on_a_healthy_store_and_names_problems() {
        let scratch = ScratchStore::new("fsck");
        let model = fitted(0);
        let hash = scratch.store.put(&model).unwrap();
        scratch.store.commit("home-a", hash).unwrap();
        let report = scratch.store.fsck().unwrap();
        assert!(report.is_clean(), "issues: {:?}", report.issues);
        assert_eq!(report.blobs_checked, 1);
        assert_eq!(report.lineages_checked, 1);
        // Remove the blob behind the lineage's back: fsck names it twice
        // (missing from the walk is fine — the lineage check reports it).
        fs::remove_file(scratch.root.join("blobs").join(format!("{hash}.model"))).unwrap();
        let report = scratch.store.fsck().unwrap();
        assert!(!report.is_clean());
        assert!(
            report.issues.iter().any(|i| i.contains("missing blob")),
            "issues: {:?}",
            report.issues
        );
    }

    #[test]
    fn model_hash_displays_and_parses() {
        let hash = ModelHash::from_value(0x00AB_CDEF);
        assert_eq!(hash.to_string(), "00abcdef");
        assert_eq!("00abcdef".parse::<ModelHash>().unwrap(), hash);
        assert!("xyz".parse::<ModelHash>().is_err());
        assert!("123".parse::<ModelHash>().is_err());
        assert_eq!(hash.value(), 0x00AB_CDEF);
    }

    #[test]
    fn corrupt_lineage_fails_closed() {
        let scratch = ScratchStore::new("badlineage");
        fs::write(
            scratch.root.join("lineage").join("home-a.log"),
            "1 deadbeef\nnot a line\n",
        )
        .unwrap();
        match scratch.store.lineage("home-a") {
            Err(FleetError::Lineage { reason, .. }) => {
                assert!(reason.contains("line 2"), "{reason}");
            }
            other => panic!("expected Lineage error, got {other:?}"),
        }
    }
}
