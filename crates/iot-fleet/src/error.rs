//! The fleet layer's error type.

use std::error::Error as StdError;
use std::fmt;

use causaliot_core::CausalIotError;

use crate::store::ModelHash;

/// Everything that can go wrong in the fleet layer: the model store,
/// lineage logs, and the sweep orchestrator.
///
/// Blob-level integrity failures keep the core loader's precise
/// [`CausalIotError::Corrupt`] / [`CausalIotError::Truncated`] /
/// [`CausalIotError::Io`] variants inside [`FleetError::Model`], so a
/// bit-flipped blob is reported with the same path-and-offset detail as
/// any other checkpoint (and fails closed the same way).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FleetError {
    /// A blob failed to serialise, load, or verify — carries the core
    /// pipeline error (corrupt/truncated/io, with path and offset).
    Model(CausalIotError),
    /// The addressed blob does not exist in the store.
    MissingBlob {
        /// The hash that did not resolve to a blob.
        hash: ModelHash,
    },
    /// Two different documents hashed to the same key — the store refuses
    /// the `put` rather than silently aliasing one model to another.
    HashCollision {
        /// The colliding content hash.
        hash: ModelHash,
    },
    /// The home name is not usable as a lineage key (empty, or contains a
    /// character outside `[A-Za-z0-9._-]`).
    InvalidHome {
        /// The offending name.
        name: String,
    },
    /// The home has no lineage in the store (or is not registered with
    /// the hub, for bulk operations).
    UnknownHome {
        /// The home that did not resolve.
        name: String,
    },
    /// A lineage log was unreadable or malformed.
    Lineage {
        /// Path of the offending lineage log.
        path: String,
        /// What was wrong with it.
        reason: String,
    },
    /// A store-level filesystem operation failed.
    Io {
        /// Path the operation was against.
        path: String,
        /// The OS error.
        reason: String,
    },
    /// A sweep child process could not be spawned or spoke a malformed
    /// protocol line.
    Child {
        /// What went wrong.
        reason: String,
    },
    /// The serving hub's workers are gone; a staged bulk operation could
    /// not be enqueued.
    Shutdown,
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Model(e) => e.fmt(f),
            FleetError::MissingBlob { hash } => {
                write!(f, "no blob in the model store for content hash {hash}")
            }
            FleetError::HashCollision { hash } => write!(
                f,
                "content hash collision on {hash}: a different document is already stored \
                 under this key"
            ),
            FleetError::InvalidHome { name } => write!(
                f,
                "invalid home name `{name}` (must be non-empty and use only \
                 [A-Za-z0-9._-])"
            ),
            FleetError::UnknownHome { name } => {
                write!(f, "unknown home `{name}`")
            }
            FleetError::Lineage { path, reason } => {
                write!(f, "malformed lineage log {path}: {reason}")
            }
            FleetError::Io { path, reason } => write!(f, "{path}: {reason}"),
            FleetError::Child { reason } => write!(f, "sweep child failure: {reason}"),
            FleetError::Shutdown => write!(f, "hub is shut down; bulk operation not enqueued"),
        }
    }
}

impl StdError for FleetError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            FleetError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CausalIotError> for FleetError {
    fn from(e: CausalIotError) -> Self {
        FleetError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = FleetError::MissingBlob {
            hash: ModelHash::from_value(0xDEAD_BEEF),
        };
        assert!(e.to_string().contains("deadbeef"), "{e}");
        let e = FleetError::InvalidHome {
            name: "bad/name".into(),
        };
        assert!(e.to_string().contains("bad/name"), "{e}");
        let e = FleetError::Shutdown;
        assert!(e.to_string().contains("shut down"), "{e}");
    }

    #[test]
    fn model_errors_chain_as_source() {
        let e: FleetError = CausalIotError::Corrupt {
            path: "blob".into(),
            offset: 7,
            reason: "checksum mismatch".into(),
        }
        .into();
        assert!(StdError::source(&e).is_some());
        assert!(e.to_string().contains("checksum mismatch"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: StdError + Send + Sync + 'static>() {}
        assert_bounds::<FleetError>();
    }
}
