//! Offline stand-in for `serde_derive`.
//!
//! The workspace annotates its public types with
//! `#[derive(Serialize, Deserialize)]` so they are serde-ready when the
//! real dependency is available, but no code path in the workspace
//! *invokes* serde serialisation (persistence is the hand-rolled formats
//! in `causaliot::graph::persist` and `iot-telemetry`'s JSON writer).
//! These derives therefore expand to nothing; they exist so the
//! annotations keep compiling in the offline build environment.

use proc_macro::TokenStream;

/// No-op `Serialize` derive: validates nothing, emits nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive: validates nothing, emits nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
