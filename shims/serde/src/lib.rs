//! Offline stand-in for `serde`.
//!
//! Re-exports the no-op [`Serialize`]/[`Deserialize`] derive macros so the
//! workspace's `#[derive(Serialize, Deserialize)]` annotations compile in
//! the offline build environment. No trait machinery is provided — nothing
//! in the workspace takes serde trait bounds; all real serialisation is
//! hand-rolled (see `causaliot::graph::persist` and `iot_telemetry::json`).

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};
