//! Offline stand-in for `criterion`.
//!
//! Implements the API surface the workspace's benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Throughput`],
//! and the [`criterion_group!`]/[`criterion_main!`] macros — on top of a
//! simple wall-clock harness: warm up briefly, time batches until a fixed
//! measurement window elapses, report the median per-iteration time (and
//! derived throughput). No statistics beyond that; the point is a usable
//! `cargo bench` in an environment where the real crate cannot be fetched.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP: Duration = Duration::from_millis(300);
const MEASURE: Duration = Duration::from_millis(1500);

/// Per-benchmark throughput annotation.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier, usually derived from a parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Joins a function name and a parameter.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id that is just the parameter (the group supplies the name).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher<'a> {
    result_ns: &'a mut Option<f64>,
}

impl Bencher<'_> {
    /// Runs `routine` repeatedly and records the median batch time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: also sizes the batch so one batch is ~1ms.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < WARMUP {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = WARMUP.as_secs_f64() / warm_iters.max(1) as f64;
        let batch = ((0.001 / per_iter) as u64).clamp(1, 1 << 24);

        let mut samples: Vec<f64> = Vec::new();
        let measure_start = Instant::now();
        while measure_start.elapsed() < MEASURE {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            samples.push(t0.elapsed().as_secs_f64() * 1e9 / batch as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        *self.result_ns = Some(samples[samples.len() / 2]);
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

fn run_one(name: &str, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher<'_>)) {
    let mut result_ns = None;
    f(&mut Bencher {
        result_ns: &mut result_ns,
    });
    match result_ns {
        Some(ns) => {
            let extra = match throughput {
                Some(Throughput::Elements(n)) => {
                    format!("  ({:.0} elem/s)", n as f64 / (ns / 1e9))
                }
                Some(Throughput::Bytes(n)) => {
                    format!("  ({:.1} MiB/s)", n as f64 / (ns / 1e9) / (1 << 20) as f64)
                }
                None => String::new(),
            };
            println!("{name:<48} {:>12}/iter{extra}", human_time(ns));
        }
        None => println!("{name:<48}  (no measurement)"),
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (accepted for API compatibility; the shim's
    /// measurement window is time-based).
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks a closure under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let name = format!("{}/{}", self.name, id);
        run_one(&name, self.throughput, &mut f);
        self
    }

    /// Benchmarks a closure that receives an input by reference.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let name = format!("{}/{}", self.name, id);
        run_one(&name, self.throughput, &mut |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Applies command-line configuration (no-op in the shim, but keeps
    /// `cargo bench -- <filter>` invocations from failing outright).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Benchmarks one named closure.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        run_one(name, None, &mut f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Final summary hook (no-op).
    pub fn final_summary(&mut self) {}
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
