//! Offline stand-in for the `rand` crate.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! the *surface* of `rand 0.8` it actually uses: `rngs::StdRng`,
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over half-open and
//! inclusive ranges of the primitive numeric types, and [`Rng::gen_bool`].
//!
//! The generator is xoshiro256** seeded through SplitMix64 — a different
//! stream than upstream `StdRng` (ChaCha12), so seeded sequences differ
//! from the real crate, but every consumer in this workspace treats seeds
//! as arbitrary reproducibility anchors, never as golden vectors.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open `a..b` or inclusive
    /// `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Maps 64 random bits to a uniform float in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    // 53 high bits -> uniform in [0, 1) with full double precision.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A type that can be sampled uniformly from a range — mirrors
/// `rand::distributions::uniform::SampleUniform`.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                lo + (unit_f64(rng.next_u64()) as $t) * (hi - lo)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                lo + (unit_f64(rng.next_u64()) as $t) * (hi - lo)
            }
        }
    )*};
}

impl_float_uniform!(f32, f64);

/// A range that can be sampled uniformly — mirrors
/// `rand::distributions::uniform::SampleRange`.
///
/// A single blanket impl per range shape (rather than one impl per
/// element type) keeps integer/float literal fallback working, exactly as
/// in the real crate.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(0..7);
            assert!((0..7).contains(&v));
            let f = rng.gen_range(-0.03..0.03);
            assert!((-0.03..0.03).contains(&f));
            let i = rng.gen_range(2..=5u64);
            assert!((2..=5).contains(&i));
        }
    }

    #[test]
    fn gen_range_covers_every_value() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate = {rate}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn negative_int_ranges() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..1_000 {
            let v: i64 = rng.gen_range(-10..-2);
            assert!((-10..-2).contains(&v));
        }
    }
}
